//! The typed error surface of the RPC layer.
//!
//! Every byte that crosses the deserialization boundary is untrusted: a
//! truncated frame, a flipped tag or a hostile length prefix must surface as
//! an [`RpcError`], never as a panic or an unbounded allocation. The
//! fuzz-style property tests in `tests/codec_roundtrip.rs` feed arbitrary
//! garbage and truncations through every decoder and assert exactly that.

use std::fmt;
use std::io;

/// Everything that can go wrong between two CP processes.
#[derive(Debug)]
pub enum RpcError {
    /// Transport-level I/O failure.
    Io(io::Error),
    /// A frame or payload ended before its announced content.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A frame announced a length beyond the codec's sanity bound.
    FrameTooLarge {
        /// The announced length.
        length: u64,
        /// The codec's bound ([`crate::codec::MAX_FRAME_LEN`]).
        max: u64,
    },
    /// An unknown message / semiring / kernel / option tag.
    BadTag {
        /// Which tag namespace the byte came from.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A field held a value no encoder produces (out-of-range label,
    /// non-boolean flag byte, inconsistent lengths, trailing bytes, …).
    Malformed(String),
    /// The peer answered with its error response.
    Remote(String),
    /// The server refused admission — connection cap or session cap reached
    /// — without faulting the request. Unlike [`RpcError::Remote`], this is
    /// **retryable**: the same request is expected to succeed once load
    /// drains (see [`RpcError::is_retryable`]).
    Busy(String),
    /// The server shed the request because its wire-carried deadline had
    /// already passed while the request sat in the connection queue. The
    /// work was never started, so like [`RpcError::Busy`] this is
    /// **retryable** — with a fresh deadline.
    Expired(String),
    /// Messages were well-formed but violated the session protocol
    /// (scan before open, semiring mismatch, unexpected response kind, …).
    Protocol(String),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Io(e) => write!(f, "transport error: {e}"),
            RpcError::Truncated { context } => {
                write!(f, "truncated input while decoding {context}")
            }
            RpcError::FrameTooLarge { length, max } => {
                write!(f, "frame length {length} exceeds the {max}-byte bound")
            }
            RpcError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            RpcError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            RpcError::Remote(msg) => write!(f, "remote error: {msg}"),
            RpcError::Busy(msg) => write!(f, "server busy: {msg}"),
            RpcError::Expired(msg) => write!(f, "request deadline expired: {msg}"),
            RpcError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl RpcError {
    /// Whether retrying the same operation later is expected to succeed.
    /// Only load-shedding rejections qualify — admission control (`Busy`)
    /// and deadline shedding (`Expired`), both of which guarantee the work
    /// was never started. Every other variant means the bytes, the protocol
    /// state or the transport are wrong, and a blind retry would repeat the
    /// failure (or worse, double-apply a step — the idempotent-`Step`
    /// recovery path owns *that* retry decision separately).
    pub fn is_retryable(&self) -> bool {
        matches!(self, RpcError::Busy(_) | RpcError::Expired(_))
    }
}

impl std::error::Error for RpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RpcError {
    fn from(e: io::Error) -> Self {
        RpcError::Io(e)
    }
}

/// The RPC layer's result alias.
pub type RpcResult<T> = Result<T, RpcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(RpcError, &str)> = vec![
            (
                RpcError::Truncated { context: "pins" },
                "truncated input while decoding pins",
            ),
            (
                RpcError::FrameTooLarge {
                    length: 99,
                    max: 10,
                },
                "frame length 99",
            ),
            (
                RpcError::BadTag {
                    what: "semiring",
                    tag: 0xff,
                },
                "semiring tag 0xff",
            ),
            (RpcError::Malformed("x".into()), "malformed"),
            (RpcError::Remote("boom".into()), "remote error: boom"),
            (RpcError::Busy("sessions full".into()), "server busy"),
            (
                RpcError::Expired("queued 2ms past deadline".into()),
                "deadline expired",
            ),
            (RpcError::Protocol("early".into()), "protocol violation"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err:?} display missing {needle:?}"
            );
        }
    }

    #[test]
    fn only_shed_work_is_retryable() {
        assert!(RpcError::Busy("full".into()).is_retryable());
        assert!(RpcError::Expired("late".into()).is_retryable());
        for err in [
            RpcError::Io(io::Error::new(io::ErrorKind::ConnectionReset, "x")),
            RpcError::Truncated { context: "x" },
            RpcError::FrameTooLarge { length: 9, max: 1 },
            RpcError::BadTag { what: "x", tag: 0 },
            RpcError::Malformed("x".into()),
            RpcError::Remote("x".into()),
            RpcError::Protocol("x".into()),
        ] {
            assert!(!err.is_retryable(), "{err:?}");
        }
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let err: RpcError = io::Error::new(io::ErrorKind::ConnectionReset, "gone").into();
        assert!(err.to_string().contains("gone"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
