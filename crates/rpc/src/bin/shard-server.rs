//! The shard-server binary: bind a TCP listener and serve shard sessions.
//!
//! ```text
//! shard-server --listen 127.0.0.1:7701 [--once]
//! ```
//!
//! Each connection gets a fresh [`cp_rpc::ShardServer`]: the coordinator
//! opens it with the shard's rows (`Open`), drives scans and cleaning steps,
//! and ends with `Shutdown`. With `--once` the process exits after its
//! first connection closes — the mode CI's loopback smoke test uses.

use std::net::TcpListener;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut listen = String::from("127.0.0.1:7701");
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = addr,
                None => {
                    eprintln!("shard-server: --listen requires an address");
                    return ExitCode::FAILURE;
                }
            },
            "--once" => once = true,
            "--help" | "-h" => {
                println!("usage: shard-server [--listen ADDR] [--once]");
                println!("  --listen ADDR  bind address (default 127.0.0.1:7701)");
                println!("  --once         exit after the first connection closes");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("shard-server: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("shard-server: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("shard-server listening on {addr}"),
        Err(_) => println!("shard-server listening on {listen}"),
    }

    match cp_rpc::serve(listener, once) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("shard-server: {e}");
            ExitCode::FAILURE
        }
    }
}
