//! The shard-server binary: bind a TCP listener and serve shard sessions.
//!
//! ```text
//! shard-server --listen 127.0.0.1:7701 [--once | --conns N] [--max-sessions M]
//!              [--data-dir PATH] [--stats-interval SECS] [--chaos SEED]
//! ```
//!
//! One process serves any number of independent cleaning sessions
//! concurrently ([`cp_rpc::ShardServer`] is multi-tenant): each coordinator
//! connects, opens its session (`Open` mints a session handle), drives scans
//! and cleaning steps, and ends with `Close` + `Shutdown`. Identical `Open`
//! payloads share one similarity-index build. With `--once` the process
//! exits after its first connection closes — the mode CI's loopback smoke
//! test uses; `--conns N` generalizes it to N admitted connections — the
//! mode CI's multi-tenant pool smoke uses.
//!
//! `--data-dir PATH` makes sessions durable: every `Open` payload and
//! applied pin is appended (fsync'd, CRC-framed) to a per-session
//! write-ahead log under PATH, and a restarted server pointed at the same
//! PATH replays the logs and resumes every in-flight session — a
//! reconnecting coordinator's retransmitted `Step` lands on recovered
//! state.
//!
//! `--stats-interval SECS` dumps the `cp-obs` metric registry to stderr
//! every SECS seconds (the same snapshot the wire-level `Stats` request
//! returns); set `CP_LOG=info` or `debug` for per-connection diagnostics.
//!
//! `--chaos SEED` arms deterministic fault injection on every connection's
//! response path ([`cp_rpc::FaultPlan::mixed`] with SEED): frames are
//! dropped, delayed, bit-flipped, truncated, duplicated, and connections
//! killed mid-stream, on a seeded schedule. A correct coordinator rides
//! through all of it (CRC trailers + retry/failover); this flag exists to
//! prove that against a *real* process, not just in-process tests.

use cp_rpc::{FaultPlan, ServerConfig};
use std::net::TcpListener;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut listen = String::from("127.0.0.1:7701");
    let mut cfg = ServerConfig::default();
    let mut stats_interval: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = addr,
                None => {
                    eprintln!("shard-server: --listen requires an address");
                    return ExitCode::FAILURE;
                }
            },
            "--once" => cfg.max_accepts = Some(1),
            "--conns" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.max_accepts = Some(n),
                _ => {
                    eprintln!("shard-server: --conns requires a positive count");
                    return ExitCode::FAILURE;
                }
            },
            "--max-sessions" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.max_sessions = n,
                _ => {
                    eprintln!("shard-server: --max-sessions requires a positive count");
                    return ExitCode::FAILURE;
                }
            },
            "--data-dir" => match args.next() {
                Some(path) => cfg.data_dir = Some(path.into()),
                None => {
                    eprintln!("shard-server: --data-dir requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--stats-interval" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => stats_interval = Some(n),
                _ => {
                    eprintln!("shard-server: --stats-interval requires a positive second count");
                    return ExitCode::FAILURE;
                }
            },
            "--chaos" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(seed) => cfg.chaos = Some(FaultPlan::mixed(seed)),
                None => {
                    eprintln!("shard-server: --chaos requires a u64 seed");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: shard-server [--listen ADDR] [--once | --conns N] [--max-sessions M] \
                     [--data-dir PATH] [--stats-interval SECS] [--chaos SEED]"
                );
                println!("  --listen ADDR         bind address (default 127.0.0.1:7701)");
                println!("  --once                exit after the first connection closes");
                println!("  --conns N             exit after N admitted connections close");
                println!(
                    "  --max-sessions M      cap on concurrent sessions (default {})",
                    ServerConfig::default().max_sessions
                );
                println!(
                    "  --data-dir PATH       write-ahead-log sessions under PATH; a restart \
                     replays and resumes them"
                );
                println!("  --stats-interval SECS dump the metric registry to stderr every SECS");
                println!(
                    "  --chaos SEED          inject seeded frame faults on every response path"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("shard-server: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("shard-server: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("shard-server listening on {addr}"),
        Err(_) => println!("shard-server listening on {listen}"),
    }

    if let Some(secs) = stats_interval {
        // Detached reporter; dies with the process when serve_with returns.
        std::thread::spawn(move || loop {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            let snap = cp_obs::snapshot();
            if !snap.is_empty() {
                eprintln!("{}", snap.render_text());
            }
        });
    }

    match cp_rpc::serve_with(listener, cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("shard-server: {e}");
            ExitCode::FAILURE
        }
    }
}
