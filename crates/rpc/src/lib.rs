//! # cp-rpc — the multi-process serving layer
//!
//! `cp-shard` made a single CP query partition-parallel in-process and left
//! the seams message-shaped: a worker owns one [`cp_core::DatasetShard`]
//! plus a shard-local [`cp_clean::CleaningSession`] (state that never needs
//! to leave the worker), and the coordinator's exchange per scan is compact
//! polynomial factors and boundary keys. This crate turns those seams into
//! an actual wire protocol over `std::net::TcpStream` — no external
//! dependencies, a hand-rolled length-prefixed frame codec.
//!
//! ## Layers
//!
//! * [`wire`] / [`codec`] — bounds-checked primitive encodings, the frame
//!   layer (`u32` big-endian length prefix, bounded by
//!   [`codec::MAX_FRAME_LEN`], then a `u32` request id the server echoes on
//!   the response so clients can pipeline), and serializers for
//!   [`cp_core::ShardFactors`], [`cp_core::Pins`], CP status bit vectors
//!   and whole batched [`cp_shard::ShardStream`]s. Wire semirings: exact
//!   `u128`, probability-space `f64`, and the boolean
//!   [`cp_numeric::Possibility`] ([`codec::WireSemiring`]).
//! * [`proto`] — the message schema: `Open`, `Scan`, `ExtremeSummary`,
//!   `Step`, `SyncStatus`, `Status`, `Stats`, `Close`, `Shutdown` and their
//!   responses. `Open` mints a [`proto::SessionId`] that every
//!   session-scoped request carries, so independent cleaning sessions
//!   multiplex over one server process. Binary-label status checks ship
//!   `ExtremeSummary` messages — `O(|Y|·K)` rank-ordered entries per shard,
//!   merged by rank at the coordinator — instead of whole boundary-event
//!   streams; scan streams travel delta-compressed (varint deltas plus a
//!   per-stream scalar dictionary, [`codec::encode_stream`]).
//! * [`server`] — [`server::ShardServer`]: a **multi-tenant** session
//!   registry over shared shard data. Index caches are built once per
//!   distinct `Open` payload and shared by every session over that shard;
//!   per-session state sits behind a readers-writer lock so one session's
//!   `Step` never blocks another's reads. [`server::serve_with`] runs the
//!   threaded accept loop with admission control ([`server::ServerConfig`]:
//!   connection cap, session cap, bounded per-connection request queues;
//!   over-cap work is answered with the retryable `Busy`). Each scan
//!   request returns the shard's **whole** locally-sorted boundary-event
//!   stream (factor deltas included) in a single message — one round trip
//!   per *scan*, not one per boundary event. Runs behind the `shard-server`
//!   binary.
//! * [`coordinator`] — [`coordinator::RpcCoordinator`]: partitions a
//!   cleaning problem over N servers, replays their decoded streams through
//!   the same [`cp_shard::merged_scan_sources`] loop the in-process engine
//!   uses, and exposes the `step()` / `status()` / `run_to_convergence()` /
//!   `run_order()` engine surface. Answers are *identical* to
//!   [`cp_shard::ShardedSession`]'s — bit-for-bit, property-tested over
//!   real loopback sockets.
//! * [`spill`] — the out-of-core seam over `cp-store`: fetched streams
//!   past [`coordinator::ClientConfig::spill_threshold`] (env
//!   `CP_SPILL_THRESHOLD`) are written as immutable sorted on-disk runs
//!   and scanned back through [`spill::LazyRunCursor`] — another
//!   [`cp_shard::FactorSource`], so the merge loop is unchanged and the
//!   answers stay bit-identical. Run footers (min/max keys + bloom
//!   filters) let binary-Q1 status checks skip blocks that provably
//!   cannot change the answer. On the server side, `--data-dir` adds
//!   per-session write-ahead pin logs (fsync-before-ack) with replay on
//!   restart — a crashed server resumes every in-flight session.
//! * [`fault`] / [`retry`] / [`journal`] — the failure layer.
//!   [`fault::FaultPlan`] is deterministic, seeded fault injection at the
//!   frame layer (drop/delay/corrupt/truncate/duplicate frames, refused
//!   dials, scripted kills), selectable in tests and behind `shard-server
//!   --chaos <seed>`. [`retry::RetryPolicy`] unifies connect, `Busy` and
//!   request retries under capped exponential backoff with seeded jitter
//!   and a total-time deadline; [`retry::CircuitBreaker`] fails fast per
//!   shard after consecutive failures, half-open-probing with the
//!   lightweight `Ping`. [`journal::ShardJournal`] records each shard's
//!   canonical `Open` plus the ordered applied-pin log, so the coordinator
//!   can **fail over** to a replacement server (same address or
//!   [`coordinator::ClientConfig::fallback_addrs`]) and replay the session
//!   as idempotent protocol traffic — resuming a mid-greedy run with
//!   bit-identical picks.
//!
//! ## Robustness
//!
//! Every decoder treats its input as hostile: truncations, unknown tags,
//! non-boolean flag bytes, out-of-range labels, oversized length prefixes
//! and trailing bytes are all typed [`RpcError`]s, never panics or
//! unbounded allocations (fuzz-style property tests feed garbage and
//! truncated frames through every entry point). Every frame carries a
//! CRC32 trailer, so a flipped bit anywhere in transit is a typed
//! decode failure, never a silently wrong value. A shard server survives
//! malformed requests, rejecting them per-request without dropping the
//! connection; a coordinator survives dropped, corrupted and killed
//! connections by reconnecting or failing over and replaying its journal —
//! chaos property tests drive full cleaning runs through seeded fault
//! schedules and assert results bit-identical to fault-free runs.
//!
//! ## Observability
//!
//! Every layer records into the process-wide `cp-obs` registry: the server
//! keeps per-request-type latency histograms, byte counters, per-session
//! step/scan counts, queue-depth gauges and `Busy`/malformed/first-frame
//! drop counters; [`codec::encode_stream`] maintains live delta-vs-raw
//! compression gauges (see [`codec::raw_stream_size`]); the client tracks
//! per-peer RTT histograms, reconnect/retry/timeout counters and
//! pipeline-window occupancy. The `Stats` request (session-optional) ships
//! an encoded `cp_obs::Snapshot` to any client via
//! [`coordinator::ShardClient::stats`], and the `shard-server` binary dumps
//! the registry periodically under `--stats-interval`. Silent drops are
//! gone: accept-loop and connection faults go through `cp-obs`'s
//! rate-limited leveled logger (`CP_LOG=warn|info|debug`).

pub mod codec;
pub mod coordinator;
pub mod error;
pub mod fault;
pub mod journal;
pub mod proto;
pub mod retry;
pub mod server;
pub mod spill;
pub mod wire;

pub use codec::{
    decode_factors, decode_stream, decode_summary, encode_factors, encode_stream,
    encode_stream_raw, encode_summary, raw_stream_size, read_frame, read_frame_opt,
    read_frame_opt_tagged, read_frame_tagged, write_frame, write_frame_tagged, WireSemiring,
    FRAME_OVERHEAD,
};
pub use coordinator::{ClientConfig, RpcCoordinator, ShardClient};
pub use error::{RpcError, RpcResult};
pub use fault::{FaultAction, FaultPlan, FaultSchedule, FaultyTransport};
pub use journal::ShardJournal;
pub use proto::{OpenShard, Request, Response, SessionId, ShardStatus};
pub use retry::{Admission, CircuitBreaker, RetryPolicy};
pub use server::{
    serve, serve_connection, serve_ephemeral, serve_with, spawn_server, spawn_server_on,
    RunningServer, ServerConfig, ShardServer,
};
pub use spill::{
    certain_label_over_runs, open_run_cursor, spill_stream, LazyRunCursor, SpillSource,
};
