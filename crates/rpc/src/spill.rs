//! Out-of-core shard streams: spilling a decoded [`ShardStream`] to an
//! immutable sorted on-disk run (`cp-store`) and scanning any mix of in-RAM
//! and on-disk streams through the one merged-scan loop.
//!
//! The block format of a run *is* the RPC stream codec
//! ([`crate::codec::encode_stream`]) — a spilled stream is byte-identical
//! to the scan response it arrived in, so spilling adds no second
//! serialization format. The footer's opening bytes are the same codec over
//! a zero-event copy of the stream (initial factors + total mass), which is
//! what lets a reader answer "what does this shard contribute before its
//! first boundary?" without touching the block.
//!
//! ## Lazy cursors and filter skips
//!
//! [`LazyRunCursor`] implements [`cp_shard::FactorSource`] over a run
//! *without* decoding its block up front: `peek_key` answers from the
//! footer's min key, and only the first `next_event` pays the block I/O +
//! decode. Combined with the merged scan's early exits (a binary status
//! check stops as soon as two labels are possible), a run whose key range
//! is never reached contributes exactly its opening factors and its block
//! is never read — counted by `store.runs.skipped_by_filter`.
//!
//! [`certain_label_over_runs`] adds the footer-only fast path for binary
//! Q1: when one label provably never appears in any run (its opening
//! factors carry no possibility of a nonzero tally and the bloom filter
//! rules it out of every event), the other label is certain and **no**
//! block is decoded at all.

use crate::codec::{decode_stream, encode_stream, WireSemiring};
use crate::error::{RpcError, RpcResult};
use cp_core::ShardFactors;
use cp_knn::Label;
use cp_numeric::Possibility;
use cp_shard::{
    certain_label_from_sources, BoundaryEvent, FactorSource, ShardStream, StreamCursor,
};
use cp_store::{Run, RunCursor, StoreError};
use std::path::Path;

/// Lift a storage-layer failure into the RPC error taxonomy: I/O faults
/// stay I/O faults, corruption is a malformed-payload error.
pub fn store_err(e: StoreError) -> RpcError {
    match e {
        StoreError::Io(io) => RpcError::Io(io),
        StoreError::Corrupt(msg) => RpcError::Malformed(format!("on-disk run: {msg}")),
    }
}

/// Spill one decoded stream to `path` as an immutable on-disk run. The
/// block is the stream's ordinary wire encoding; the footer's opening
/// bytes are the encoding of its zero-event head.
pub fn spill_stream<S: WireSemiring>(path: &Path, stream: &ShardStream<S>) -> RpcResult<Run> {
    let block = encode_stream(stream);
    let opening = encode_stream(&ShardStream {
        initial: stream.initial.clone(),
        total: stream.total.clone(),
        events: Vec::new(),
    });
    Run::spill(path, stream, &opening, &block).map_err(store_err)
}

/// Decode a run's block into an owning [`RunCursor`], cross-checking the
/// decoded shape against the footer (a mismatch means the file was damaged
/// in a way both CRCs happened to miss, or reassembled from two runs).
pub fn open_run_cursor<S: WireSemiring>(run: &Run) -> RpcResult<RunCursor<S>> {
    let bytes = run.read_block().map_err(store_err)?;
    let stream = decode_stream::<S>(&bytes)?;
    let meta = run.meta();
    if stream.events.len() as u64 != meta.n_events
        || stream.k() != meta.k
        || stream.n_labels() != meta.n_labels
    {
        return Err(RpcError::Malformed(format!(
            "run block shape ({} events, k={}, |Y|={}) does not match its footer \
             ({} events, k={}, |Y|={})",
            stream.events.len(),
            stream.k(),
            stream.n_labels(),
            meta.n_events,
            meta.k,
            meta.n_labels
        )));
    }
    Ok(RunCursor::new(stream))
}

/// A [`FactorSource`] over an on-disk run that defers the block decode
/// until the merged scan actually consumes one of its events. Construction
/// decodes only the footer's opening bytes (factors + total mass, a few
/// hundred bytes); `peek_key` answers from the footer's min key.
///
/// # Panics
/// `next_event` panics if the run file was damaged between [`Run::open`]
/// and the scan — the merge loop is infallible, and a run this process
/// wrote moments ago going bad mid-scan is a local-disk invariant
/// violation, not hostile input (hostile bytes are rejected with typed
/// errors at [`Run::open`] / [`open_run_cursor`] time).
pub struct LazyRunCursor<'a, S: WireSemiring> {
    run: &'a Run,
    opening: ShardFactors<S>,
    total: S,
    cursor: Option<RunCursor<S>>,
}

impl<'a, S: WireSemiring> LazyRunCursor<'a, S> {
    /// Wrap an opened run, decoding its opening factors only.
    pub fn new(run: &'a Run) -> RpcResult<Self> {
        let head = decode_stream::<S>(run.opening())?;
        if !head.events.is_empty() {
            return Err(RpcError::Malformed(
                "run opening bytes carry boundary events".into(),
            ));
        }
        if head.k() != run.meta().k || head.n_labels() != run.meta().n_labels {
            return Err(RpcError::Malformed(
                "run opening shape does not match its footer".into(),
            ));
        }
        Ok(LazyRunCursor {
            run,
            opening: head.initial,
            total: head.total,
            cursor: None,
        })
    }

    /// Whether the block has been decoded (i.e. the scan reached this run).
    pub fn block_decoded(&self) -> bool {
        self.cursor.is_some()
    }

    /// The run this cursor reads.
    pub fn run(&self) -> &Run {
        self.run
    }

    fn force(&mut self) -> &mut RunCursor<S> {
        if self.cursor.is_none() {
            let cursor = open_run_cursor::<S>(self.run)
                .unwrap_or_else(|e| panic!("on-disk run damaged mid-scan: {e}"));
            self.cursor = Some(cursor);
        }
        self.cursor.as_mut().expect("just filled")
    }
}

impl<S: WireSemiring> FactorSource<S> for LazyRunCursor<'_, S> {
    fn peek_key(&self) -> Option<(f64, usize, u32)> {
        match &self.cursor {
            Some(c) => c.peek_key(),
            // streams are locally sorted, so the footer's min key is
            // exactly the first event the block would yield
            None => self.run.meta().min_key,
        }
    }

    fn next_event(&mut self) -> BoundaryEvent<S> {
        self.force().next_event()
    }

    fn opening_factors(&self) -> ShardFactors<S> {
        self.opening.clone()
    }

    fn total_mass(&self) -> S {
        self.total.clone()
    }
}

/// One source of a mixed merged scan: a borrowed in-RAM stream cursor or a
/// lazy on-disk run. [`cp_shard::merged_scan_sources`] is monomorphic over
/// its source type, so mixing RAM and disk in one scan goes through this
/// enum.
pub enum SpillSource<'a, S: WireSemiring> {
    /// A borrowed cursor over an in-RAM [`ShardStream`].
    Ram(StreamCursor<'a, S>),
    /// A lazy cursor over an on-disk run.
    Disk(LazyRunCursor<'a, S>),
}

impl<S: WireSemiring> FactorSource<S> for SpillSource<'_, S> {
    fn peek_key(&self) -> Option<(f64, usize, u32)> {
        match self {
            SpillSource::Ram(c) => c.peek_key(),
            SpillSource::Disk(c) => c.peek_key(),
        }
    }

    fn next_event(&mut self) -> BoundaryEvent<S> {
        match self {
            SpillSource::Ram(c) => c.next_event(),
            SpillSource::Disk(c) => c.next_event(),
        }
    }

    fn opening_factors(&self) -> ShardFactors<S> {
        match self {
            SpillSource::Ram(c) => c.opening_factors(),
            SpillSource::Disk(c) => c.opening_factors(),
        }
    }

    fn total_mass(&self) -> S {
        match self {
            SpillSource::Ram(c) => c.total_mass(),
            SpillSource::Disk(c) => c.total_mass(),
        }
    }
}

/// `true` iff the run provably contributes no `label`-labelled neighbor in
/// any world: its opening factors carry no possibility of a tally ≥ 1 for
/// `label`, and the bloom filter rules `label` out of every boundary event
/// (events replace exactly their own label's polynomial, so no event can
/// introduce what the bloom filter excludes). Footer + opening only — no
/// block I/O.
fn label_provably_absent(run: &Run, opening: &ShardFactors<Possibility>, label: usize) -> bool {
    !run.meta().might_contain_label(label) && opening.poly(label).iter().skip(1).all(|p| !p.0)
}

/// The certainly-predicted label (if any) from `Possibility` runs — the
/// status check of a coordinator whose shard streams were spilled to disk.
///
/// Answers are bit-identical to [`cp_shard::certain_label_from_streams`]
/// over the same streams, but blocks are decoded only when needed:
///
/// 1. **Footer pre-check (binary only)**: if exactly one label is
///    provably absent from every run (bloom filter plus opening-factor
///    tail, see `label_provably_absent`), the other
///    label wins in every world (all `k ≥ 1` neighbors carry it) — answer
///    immediately, zero blocks decoded.
/// 2. **Lazy early-exit scan**: otherwise merge [`LazyRunCursor`]s; the
///    two-labels-possible early exit often fires before the merge reaches
///    high-`sim` runs, whose blocks are then never read.
///
/// Every run with events whose block was never decoded increments
/// `store.runs.skipped_by_filter`.
pub fn certain_label_over_runs(
    runs: &[Run],
    n_labels: usize,
    k: usize,
) -> RpcResult<Option<Label>> {
    assert!(!runs.is_empty(), "need at least one run");
    let mut sources = Vec::with_capacity(runs.len());
    for run in runs {
        sources.push(LazyRunCursor::<Possibility>::new(run)?);
    }
    let count_skipped = |decoded: &dyn Fn(usize) -> bool| {
        let skipped = runs
            .iter()
            .enumerate()
            .filter(|(i, r)| r.meta().n_events > 0 && !decoded(*i))
            .count() as u64;
        cp_obs::counter!("store.runs.skipped_by_filter").add(skipped);
    };
    if n_labels == 2 {
        let absent: Vec<usize> = (0..2)
            .filter(|&l| {
                runs.iter()
                    .zip(&sources)
                    .all(|(run, src)| label_provably_absent(run, &src.opening, l))
            })
            .collect();
        // exactly one label impossible everywhere: the other holds all k
        // neighbors in every world, so it is certain without any block I/O
        // (both absent would mean no neighbors at all — degenerate data;
        // fall through to the real scan rather than guess)
        if let [impossible] = absent[..] {
            count_skipped(&|_| false);
            return Ok(Some(1 - impossible));
        }
    }
    let label = certain_label_from_sources(&mut sources, n_labels, k);
    count_skipped(&|i| sources[i].block_decoded());
    Ok(label)
}
