//! The hand-rolled frame codec: length-prefixed frames over any
//! `Read`/`Write` transport, plus the binary encodings of every value the
//! shard protocol ships — [`ShardFactors`], [`Pins`], CP status bit
//! vectors, and whole batched [`ShardStream`]s.
//!
//! ## Frame format
//!
//! ```text
//! ┌──────────────┬─────────────────┬──────────────────────┬──────────────┐
//! │ u32 BE: len  │ u32 BE: req id  │ payload (len bytes)  │ u32 BE: crc  │
//! └──────────────┴─────────────────┴──────────────────────┴──────────────┘
//! ```
//!
//! The length counts the payload only and is bounded by [`MAX_FRAME_LEN`];
//! a larger announcement is rejected before any allocation. The request id
//! pairs responses with requests: a server echoes each request's id on its
//! response, which is what lets a client keep several requests in flight on
//! one connection ([`crate::ShardClient::scan_many`]) and still detect any
//! pairing violation instead of silently mis-attributing a response. The
//! trailing CRC32 covers the whole frame (length, id, and payload), so a
//! flipped bit anywhere — header or body — surfaces as a typed
//! [`RpcError::Malformed`] at the frame boundary rather than a decoder
//! error deep in a payload, or worse, a silently wrong value. That
//! detection is what lets the failover layer treat *any* corrupted frame
//! as a recoverable transport fault.
//! Payloads are self-describing: the first byte is a message tag (see
//! [`crate::proto`]), and semiring-carrying values lead with a semiring tag
//! so a decoder instantiated at the wrong type fails with a typed error
//! instead of misreading bytes.
//!
//! All decoders take untrusted input: truncations, unknown tags, hostile
//! length prefixes and trailing bytes all surface as [`crate::RpcError`]s —
//! property-tested in `tests/codec_roundtrip.rs`.

use crate::error::{RpcError, RpcResult};
use crate::wire::{
    put_bool, put_f64, put_opt_u32, put_u128, put_u32, put_u8, put_usize, put_varint_u64,
    put_zigzag_i64, Reader,
};
use cp_core::{ExtremeEntry, ExtremeSummary, Pins, ShardFactors};
use cp_knn::Kernel;
use cp_numeric::{CountSemiring, Possibility};
use cp_shard::{BoundaryEvent, ShardStream, ShardStreamEvent};
use std::io::{Read, Write};

/// Sanity bound on a frame's announced length (64 MiB) — far above any real
/// message in this protocol, far below an allocation that could hurt.
pub const MAX_FRAME_LEN: u64 = 64 << 20;

/// Bytes a frame adds around its payload: the `len` + `req id` header and
/// the trailing CRC32.
pub const FRAME_OVERHEAD: u64 = 12;

/// CRC32 over the frame header and payload — the value carried in the
/// frame trailer.
fn frame_crc(len_bytes: [u8; 4], id_bytes: [u8; 4], payload: &[u8]) -> u32 {
    let mut covered = Vec::with_capacity(8 + payload.len());
    covered.extend_from_slice(&len_bytes);
    covered.extend_from_slice(&id_bytes);
    covered.extend_from_slice(payload);
    cp_store::crc32(&covered)
}

/// Write one length-prefixed, CRC-trailed frame carrying a request id (see
/// the module docs for the layout).
pub fn write_frame_tagged<W: Write>(w: &mut W, req_id: u32, payload: &[u8]) -> RpcResult<()> {
    let len = payload.len() as u64;
    if len > MAX_FRAME_LEN {
        return Err(RpcError::FrameTooLarge {
            length: len,
            max: MAX_FRAME_LEN,
        });
    }
    let len_bytes = (len as u32).to_be_bytes();
    let id_bytes = req_id.to_be_bytes();
    let crc = frame_crc(len_bytes, id_bytes, payload);
    w.write_all(&len_bytes)?;
    w.write_all(&id_bytes)?;
    w.write_all(payload)?;
    w.write_all(&crc.to_be_bytes())?;
    w.flush()?;
    Ok(())
}

/// [`write_frame_tagged`] with request id 0 — for callers outside the
/// pipelined request/response pairing (tests, one-shot tools).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> RpcResult<()> {
    write_frame_tagged(w, 0, payload)
}

/// Read one frame, returning its request id and payload. Truncated input
/// (including EOF midway through the header) and oversized announcements
/// are typed errors.
pub fn read_frame_tagged<R: Read>(r: &mut R) -> RpcResult<(u32, Vec<u8>)> {
    read_frame_opt_tagged(r)?.ok_or(RpcError::Truncated {
        context: "frame length prefix",
    })
}

/// [`read_frame_tagged`], discarding the request id — for callers outside
/// the pipelined pairing.
pub fn read_frame<R: Read>(r: &mut R) -> RpcResult<Vec<u8>> {
    Ok(read_frame_tagged(r)?.1)
}

/// [`read_frame_tagged`], distinguishing an **orderly EOF** — the transport
/// ending exactly at a frame boundary, i.e. zero bytes before the next
/// header — as `Ok(None)`. This is how a server tells a coordinator's clean
/// disconnect apart from a frame cut off mid-flight (still a typed error).
pub fn read_frame_opt_tagged<R: Read>(r: &mut R) -> RpcResult<Option<(u32, Vec<u8>)>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(RpcError::Truncated {
                    context: "frame length prefix",
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RpcError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix) as u64;
    if len > MAX_FRAME_LEN {
        return Err(RpcError::FrameTooLarge {
            length: len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut id_bytes = [0u8; 4];
    read_exact_or_truncated(r, &mut id_bytes, "frame request id")?;
    let mut payload = vec![0u8; len as usize];
    read_exact_or_truncated(r, &mut payload, "frame payload")?;
    let mut crc_bytes = [0u8; 4];
    read_exact_or_truncated(r, &mut crc_bytes, "frame checksum")?;
    let req_id = u32::from_be_bytes(id_bytes);
    let expected = frame_crc(prefix, id_bytes, &payload);
    if u32::from_be_bytes(crc_bytes) != expected {
        return Err(RpcError::Malformed(format!(
            "frame checksum mismatch (req id {req_id}, {len} payload bytes)"
        )));
    }
    Ok(Some((req_id, payload)))
}

/// [`read_frame_opt_tagged`], discarding the request id.
pub fn read_frame_opt<R: Read>(r: &mut R) -> RpcResult<Option<Vec<u8>>> {
    Ok(read_frame_opt_tagged(r)?.map(|(_, payload)| payload))
}

fn read_exact_or_truncated<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> RpcResult<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            RpcError::Truncated { context }
        } else {
            RpcError::Io(e)
        }
    })
}

/// A counting semiring with a wire encoding — the scalar layer every
/// factor/stream message is generic over.
///
/// Only the semirings the serving path actually ships implement this:
/// exact `u128` counts, probability-space `f64`, and the boolean
/// [`Possibility`] semiring the status scans run in. (`BigUint` /
/// `ScaledF64` are reporting-side types and stay process-local.)
pub trait WireSemiring: CountSemiring {
    /// This semiring's wire tag (leads every encoded factor/stream value).
    const TAG: u8;
    /// Human-readable name for error messages.
    const NAME: &'static str;
    /// Minimum encoded size of one scalar, for pre-allocation bounds checks.
    const MIN_SCALAR_BYTES: usize;

    /// Append one scalar.
    fn put(&self, out: &mut Vec<u8>);
    /// Read one scalar.
    fn get(r: &mut Reader<'_>) -> RpcResult<Self>;
}

impl WireSemiring for u128 {
    const TAG: u8 = 1;
    const NAME: &'static str = "u128";
    const MIN_SCALAR_BYTES: usize = 16;

    fn put(&self, out: &mut Vec<u8>) {
        put_u128(out, *self);
    }

    fn get(r: &mut Reader<'_>) -> RpcResult<Self> {
        r.u128("u128 scalar")
    }
}

impl WireSemiring for f64 {
    const TAG: u8 = 2;
    const NAME: &'static str = "f64";
    const MIN_SCALAR_BYTES: usize = 8;

    fn put(&self, out: &mut Vec<u8>) {
        put_f64(out, *self);
    }

    fn get(r: &mut Reader<'_>) -> RpcResult<Self> {
        r.f64("f64 scalar")
    }
}

impl WireSemiring for Possibility {
    const TAG: u8 = 3;
    const NAME: &'static str = "possibility";
    const MIN_SCALAR_BYTES: usize = 1;

    fn put(&self, out: &mut Vec<u8>) {
        put_bool(out, self.0);
    }

    fn get(r: &mut Reader<'_>) -> RpcResult<Self> {
        Ok(Possibility(r.bool("possibility scalar")?))
    }
}

fn check_semiring_tag<S: WireSemiring>(r: &mut Reader<'_>) -> RpcResult<()> {
    let tag = r.u8("semiring tag")?;
    if tag != S::TAG {
        return Err(RpcError::Protocol(format!(
            "semiring mismatch: expected {} (tag {}), found tag {tag}",
            S::NAME,
            S::TAG
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

/// Append a [`Kernel`].
pub fn put_kernel(out: &mut Vec<u8>, kernel: Kernel) {
    match kernel {
        Kernel::NegEuclidean => put_u8(out, 1),
        Kernel::NegManhattan => put_u8(out, 2),
        Kernel::Linear => put_u8(out, 3),
        Kernel::Rbf { gamma } => {
            put_u8(out, 4);
            put_f64(out, gamma);
        }
        Kernel::Cosine => put_u8(out, 5),
    }
}

/// Read a [`Kernel`].
pub fn get_kernel(r: &mut Reader<'_>) -> RpcResult<Kernel> {
    match r.u8("kernel tag")? {
        1 => Ok(Kernel::NegEuclidean),
        2 => Ok(Kernel::NegManhattan),
        3 => Ok(Kernel::Linear),
        4 => Ok(Kernel::Rbf {
            gamma: r.f64("rbf gamma")?,
        }),
        5 => Ok(Kernel::Cosine),
        tag => Err(RpcError::BadTag {
            what: "kernel",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// Pins and status bits
// ---------------------------------------------------------------------------

/// Append a [`Pins`] mask (length + one `Option<u32>` per set).
pub fn put_pins(out: &mut Vec<u8>, pins: &Pins) {
    put_u32(out, pins.len() as u32);
    for i in 0..pins.len() {
        put_opt_u32(out, pins.pinned(i).map(|j| j as u32));
    }
}

/// Read a [`Pins`] mask.
pub fn get_pins(r: &mut Reader<'_>) -> RpcResult<Pins> {
    let n = r.count(1, "pins")?;
    let mut pins = Pins::none(n);
    for i in 0..n {
        if let Some(j) = r.opt_u32("pin entry")? {
            pins.pin(i, j as usize);
        }
    }
    Ok(pins)
}

/// Append a CP status bit vector.
pub fn put_status_bits(out: &mut Vec<u8>, bits: &[bool]) {
    put_u32(out, bits.len() as u32);
    for &b in bits {
        put_bool(out, b);
    }
}

/// Read a CP status bit vector (strict boolean bytes).
pub fn get_status_bits(r: &mut Reader<'_>) -> RpcResult<Vec<bool>> {
    let n = r.count(1, "status bits")?;
    let mut bits = Vec::with_capacity(n);
    for _ in 0..n {
        bits.push(r.bool("status bit")?);
    }
    Ok(bits)
}

// ---------------------------------------------------------------------------
// Vectors of feature vectors (Open payloads)
// ---------------------------------------------------------------------------

/// Append a list of feature vectors (count, then per-vector dim + values).
pub fn put_points(out: &mut Vec<u8>, points: &[Vec<f64>]) {
    put_u32(out, points.len() as u32);
    for p in points {
        put_u32(out, p.len() as u32);
        for &v in p {
            put_f64(out, v);
        }
    }
}

/// Read a list of feature vectors.
pub fn get_points(r: &mut Reader<'_>) -> RpcResult<Vec<Vec<f64>>> {
    let n = r.count(4, "points")?;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let dim = r.count(8, "point dim")?;
        let mut p = Vec::with_capacity(dim);
        for _ in 0..dim {
            p.push(r.f64("feature")?);
        }
        points.push(p);
    }
    Ok(points)
}

// ---------------------------------------------------------------------------
// ShardFactors
// ---------------------------------------------------------------------------

fn put_factors_body<S: WireSemiring>(out: &mut Vec<u8>, factors: &ShardFactors<S>) {
    put_u32(out, factors.k() as u32);
    put_u32(out, factors.n_labels() as u32);
    for poly in factors.polys() {
        for c in poly {
            c.put(out);
        }
    }
}

fn get_factors_body<S: WireSemiring>(r: &mut Reader<'_>) -> RpcResult<ShardFactors<S>> {
    let k = r.u32("factor slot budget")? as usize;
    let n_labels = r.u32("factor label count")? as usize;
    let scalars = n_labels.saturating_mul(k + 1);
    if scalars.saturating_mul(S::MIN_SCALAR_BYTES) > r.remaining() {
        return Err(RpcError::Truncated {
            context: "factor polynomials",
        });
    }
    let mut polys = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        let mut poly = Vec::with_capacity(k + 1);
        for _ in 0..=k {
            poly.push(S::get(r)?);
        }
        polys.push(poly);
    }
    Ok(ShardFactors::from_polys(polys, k))
}

/// Encode a [`ShardFactors`] value (self-tagged with its semiring).
pub fn encode_factors<S: WireSemiring>(factors: &ShardFactors<S>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u8(&mut out, S::TAG);
    put_factors_body(&mut out, factors);
    out
}

/// Decode a [`ShardFactors`] value, checking the semiring tag.
pub fn decode_factors<S: WireSemiring>(buf: &[u8]) -> RpcResult<ShardFactors<S>> {
    let mut r = Reader::new(buf);
    check_semiring_tag::<S>(&mut r)?;
    let factors = get_factors_body::<S>(&mut r)?;
    r.finish("shard factors")?;
    Ok(factors)
}

// ---------------------------------------------------------------------------
// ShardStream — the per-scan batched event stream
// ---------------------------------------------------------------------------

/// Stream encoding version byte: the fixed-width layout every field at its
/// natural size.
const STREAM_V_RAW: u8 = 1;
/// Stream encoding version byte: the delta+varint+dictionary layout —
/// zigzag-varint deltas for the (near-sorted) sim/row keys, varints for
/// candidates and labels, and every semiring scalar replaced by a varint
/// index into a per-stream dictionary of distinct scalars (boundary events
/// repeat polynomial coefficients heavily — a row's events share its
/// excluding polynomial, and tally counts recur across boundaries).
const STREAM_V_DELTA: u8 = 2;

/// Interns semiring scalars by their encoded bytes (bit patterns, so `f64`
/// stays bit-exact), assigning dictionary ids in first-appearance order.
struct ScalarInterner {
    ids: std::collections::HashMap<Vec<u8>, u64>,
    /// The dictionary body: every distinct scalar's raw encoding, in id order.
    dict: Vec<u8>,
}

impl ScalarInterner {
    fn new() -> Self {
        ScalarInterner {
            ids: std::collections::HashMap::new(),
            dict: Vec::new(),
        }
    }

    fn intern<S: WireSemiring>(&mut self, s: &S) -> u64 {
        let mut key = Vec::with_capacity(S::MIN_SCALAR_BYTES);
        s.put(&mut key);
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.ids.len() as u64;
        self.dict.extend_from_slice(&key);
        self.ids.insert(key, id);
        id
    }
}

/// Encode a whole batched [`ShardStream`] — one scan's worth of
/// locally-sorted boundary events with factor deltas, the message that
/// replaces one round-trip per boundary event. This is the delta
/// encoding (version 2), the wire default; [`encode_stream_raw`]
/// keeps the fixed-width layout for size comparisons, and
/// [`decode_stream`] accepts both.
pub fn encode_stream<S: WireSemiring>(stream: &ShardStream<S>) -> Vec<u8> {
    let k = stream.initial.k();
    let mut interner = ScalarInterner::new();
    // body = everything after the dictionary, interning scalars in one
    // canonical traversal order (the same order the decoder replays)
    let mut body = Vec::new();
    for poly in stream.initial.polys() {
        for c in poly {
            put_varint_u64(&mut body, interner.intern(c));
        }
    }
    put_varint_u64(&mut body, interner.intern(&stream.total));
    let mut prev_sim_bits = 0u64;
    let mut prev_row = 0u64;
    for ev in &stream.events {
        debug_assert_eq!(ev.event.updated_poly.len(), k + 1);
        debug_assert_eq!(ev.event.excluding_poly.len(), k + 1);
        let sim_bits = ev.sim.to_bits();
        put_zigzag_i64(&mut body, sim_bits.wrapping_sub(prev_sim_bits) as i64);
        prev_sim_bits = sim_bits;
        let row = ev.row as u64;
        put_zigzag_i64(&mut body, row.wrapping_sub(prev_row) as i64);
        prev_row = row;
        put_varint_u64(&mut body, u64::from(ev.cand));
        put_varint_u64(&mut body, ev.event.label as u64);
        for c in &ev.event.updated_poly {
            put_varint_u64(&mut body, interner.intern(c));
        }
        for c in &ev.event.excluding_poly {
            put_varint_u64(&mut body, interner.intern(c));
        }
        put_varint_u64(&mut body, interner.intern(&ev.event.boundary_mass));
    }
    let mut out = Vec::with_capacity(16 + interner.dict.len() + body.len());
    put_u8(&mut out, S::TAG);
    put_u8(&mut out, STREAM_V_DELTA);
    put_u32(&mut out, k as u32);
    put_u32(&mut out, stream.initial.n_labels() as u32);
    put_varint_u64(&mut out, stream.events.len() as u64);
    put_varint_u64(&mut out, interner.ids.len() as u64);
    out.extend_from_slice(&interner.dict);
    out.extend_from_slice(&body);
    // running compression accounting: delta bytes actually produced vs what
    // the fixed-width raw layout would have cost (arithmetic — every wire
    // semiring is fixed-width, so no second encode is needed)
    let delta_total = cp_obs::counter!("rpc.codec.stream_bytes_delta");
    let raw_total = cp_obs::counter!("rpc.codec.stream_bytes_raw");
    delta_total.add(out.len() as u64);
    raw_total.add(raw_stream_size(stream) as u64);
    let (d, r) = (delta_total.get(), raw_total.get());
    if d > 0 {
        cp_obs::gauge!("rpc.codec.stream_compression_ratio").set(r as f64 / d as f64);
    }
    out
}

/// The exact byte size [`encode_stream_raw`] would produce for `stream`,
/// computed arithmetically: every [`WireSemiring`] is fixed-width
/// (`MIN_SCALAR_BYTES` is its exact scalar size), so the raw layout's size
/// is `header + factors + total + count + events × event_size` with no
/// encoding pass. [`encode_stream`] uses this to keep the live
/// compression-ratio gauge at zero marginal cost.
pub fn raw_stream_size<S: WireSemiring>(stream: &ShardStream<S>) -> usize {
    let k = stream.initial.k();
    let n_labels = stream.initial.n_labels();
    let sb = S::MIN_SCALAR_BYTES;
    // tag + version, factors body (k + n_labels + polys), total, event count
    2 + (8 + n_labels * (k + 1) * sb)
        + sb
        + 4
        + stream.events.len() * (8 + 8 + 4 + 4 + (2 * (k + 1) + 1) * sb)
}

/// Encode a batched [`ShardStream`] in the fixed-width raw (version 1)
/// layout — every key at its natural size, every scalar inline. Kept so
/// benches can report the delta encoding's on-wire reduction against it;
/// [`decode_stream`] accepts either version.
pub fn encode_stream_raw<S: WireSemiring>(stream: &ShardStream<S>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u8(&mut out, S::TAG);
    put_u8(&mut out, STREAM_V_RAW);
    put_factors_body(&mut out, &stream.initial);
    stream.total.put(&mut out);
    put_u32(&mut out, stream.events.len() as u32);
    for ev in &stream.events {
        put_f64(&mut out, ev.sim);
        put_usize(&mut out, ev.row);
        put_u32(&mut out, ev.cand);
        put_u32(&mut out, ev.event.label as u32);
        debug_assert_eq!(ev.event.updated_poly.len(), stream.initial.k() + 1);
        debug_assert_eq!(ev.event.excluding_poly.len(), stream.initial.k() + 1);
        for c in &ev.event.updated_poly {
            c.put(&mut out);
        }
        for c in &ev.event.excluding_poly {
            c.put(&mut out);
        }
        ev.event.boundary_mass.put(&mut out);
    }
    out
}

/// Decode a batched [`ShardStream`] in either stream-encoding version,
/// checking the semiring tag, label ranges, dictionary indexes and
/// polynomial shapes.
pub fn decode_stream<S: WireSemiring>(buf: &[u8]) -> RpcResult<ShardStream<S>> {
    let mut r = Reader::new(buf);
    check_semiring_tag::<S>(&mut r)?;
    match r.u8("stream version")? {
        STREAM_V_RAW => decode_stream_raw_body(r),
        STREAM_V_DELTA => decode_stream_delta_body(r),
        tag => Err(RpcError::BadTag {
            what: "stream version",
            tag,
        }),
    }
}

fn decode_stream_raw_body<S: WireSemiring>(mut r: Reader<'_>) -> RpcResult<ShardStream<S>> {
    let initial = get_factors_body::<S>(&mut r)?;
    let (k, n_labels) = (initial.k(), initial.n_labels());
    let total = S::get(&mut r)?;
    // each event carries ≥ 24 bytes of key plus 2(k+1)+1 scalars
    let min_event = 24 + (2 * (k + 1) + 1) * S::MIN_SCALAR_BYTES;
    let n_events = r.count(min_event, "stream events")?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let sim = r.f64("event similarity")?;
        let row = r.usize("event row")?;
        let cand = r.u32("event candidate")?;
        let label = r.u32("event label")? as usize;
        if label >= n_labels {
            return Err(RpcError::Malformed(format!(
                "event label {label} out of range for {n_labels} labels"
            )));
        }
        let mut updated_poly = Vec::with_capacity(k + 1);
        for _ in 0..=k {
            updated_poly.push(S::get(&mut r)?);
        }
        let mut excluding_poly = Vec::with_capacity(k + 1);
        for _ in 0..=k {
            excluding_poly.push(S::get(&mut r)?);
        }
        let boundary_mass = S::get(&mut r)?;
        events.push(ShardStreamEvent {
            sim,
            row,
            cand,
            event: BoundaryEvent {
                label,
                updated_poly,
                excluding_poly,
                boundary_mass,
            },
        });
    }
    r.finish("shard stream")?;
    Ok(ShardStream {
        initial,
        total,
        events,
    })
}

fn decode_stream_delta_body<S: WireSemiring>(mut r: Reader<'_>) -> RpcResult<ShardStream<S>> {
    let k = r.u32("stream slot budget")? as usize;
    let n_labels = r.u32("stream label count")? as usize;
    let n_events = usize::try_from(r.varint_u64("stream events")?)
        .map_err(|_| RpcError::Malformed("stream events: count exceeds usize".into()))?;
    // every delta-coded event costs ≥ 4 key bytes + 2(k+1)+1 index bytes
    let min_event = 4usize.saturating_add((2 * (k + 1) + 1).saturating_mul(1));
    if n_events.saturating_mul(min_event) > r.remaining() {
        return Err(RpcError::Truncated {
            context: "stream events",
        });
    }
    let n_dict = usize::try_from(r.varint_u64("stream dictionary")?)
        .map_err(|_| RpcError::Malformed("stream dictionary: count exceeds usize".into()))?;
    if n_dict.saturating_mul(S::MIN_SCALAR_BYTES) > r.remaining() {
        return Err(RpcError::Truncated {
            context: "stream dictionary",
        });
    }
    let mut dict = Vec::with_capacity(n_dict);
    for _ in 0..n_dict {
        dict.push(S::get(&mut r)?);
    }
    let scalar = |r: &mut Reader<'_>, dict: &[S]| -> RpcResult<S> {
        let i = r.varint_u64("scalar dictionary index")? as usize;
        dict.get(i).cloned().ok_or_else(|| {
            RpcError::Malformed(format!(
                "scalar dictionary index {i} out of range for {} entries",
                dict.len()
            ))
        })
    };
    let scalars = n_labels.saturating_mul(k + 1);
    if scalars > r.remaining() {
        return Err(RpcError::Truncated {
            context: "factor polynomials",
        });
    }
    let mut polys = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        let mut poly = Vec::with_capacity(k + 1);
        for _ in 0..=k {
            poly.push(scalar(&mut r, &dict)?);
        }
        polys.push(poly);
    }
    let initial = ShardFactors::from_polys(polys, k);
    let total = scalar(&mut r, &dict)?;
    let mut events = Vec::with_capacity(n_events);
    let mut prev_sim_bits = 0u64;
    let mut prev_row = 0u64;
    for _ in 0..n_events {
        let sim_delta = r.zigzag_i64("event similarity delta")?;
        prev_sim_bits = prev_sim_bits.wrapping_add(sim_delta as u64);
        let sim = f64::from_bits(prev_sim_bits);
        let row_delta = r.zigzag_i64("event row delta")?;
        prev_row = prev_row.wrapping_add(row_delta as u64);
        let row = usize::try_from(prev_row)
            .map_err(|_| RpcError::Malformed("event row: value exceeds usize".into()))?;
        let cand = u32::try_from(r.varint_u64("event candidate")?)
            .map_err(|_| RpcError::Malformed("event candidate: value exceeds u32".into()))?;
        let label = r.varint_u64("event label")? as usize;
        if label >= n_labels {
            return Err(RpcError::Malformed(format!(
                "event label {label} out of range for {n_labels} labels"
            )));
        }
        let mut updated_poly = Vec::with_capacity(k + 1);
        for _ in 0..=k {
            updated_poly.push(scalar(&mut r, &dict)?);
        }
        let mut excluding_poly = Vec::with_capacity(k + 1);
        for _ in 0..=k {
            excluding_poly.push(scalar(&mut r, &dict)?);
        }
        let boundary_mass = scalar(&mut r, &dict)?;
        events.push(ShardStreamEvent {
            sim,
            row,
            cand,
            event: BoundaryEvent {
                label,
                updated_poly,
                excluding_poly,
                boundary_mass,
            },
        });
    }
    r.finish("shard stream")?;
    Ok(ShardStream {
        initial,
        total,
        events,
    })
}

// ---------------------------------------------------------------------------
// ExtremeSummary — the rank-merged binary-Q1 status message
// ---------------------------------------------------------------------------

/// Minimum encoded size of one summary entry (`sim` + `row` + `cand` +
/// `label`), for pre-allocation bounds checks.
const SUMMARY_ENTRY_BYTES: usize = 8 + 8 + 4 + 4;

/// Encode an [`ExtremeSummary`] — the `O(|Y|·K)` message a shard ships per
/// binary status check instead of its whole boundary-event stream.
/// Summaries are semiring-free (their entries are rank keys and label
/// votes), so there is no semiring tag.
pub fn encode_summary(summary: &ExtremeSummary) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, summary.k() as u32);
    put_u32(&mut out, summary.n_labels() as u32);
    for top in summary.tops() {
        put_u32(&mut out, top.len() as u32);
        for e in top {
            put_f64(&mut out, e.sim);
            put_usize(&mut out, e.row);
            put_u32(&mut out, e.cand);
            put_u32(&mut out, e.label as u32);
        }
    }
    out
}

/// Decode an [`ExtremeSummary`], enforcing every invariant the rank merge
/// relies on: per-direction entry counts within the K budget, labels in
/// range, strictly descending rank order (all re-checked by
/// [`ExtremeSummary::from_parts`], so hostile input surfaces as a typed
/// error, never a panic in the merge).
pub fn decode_summary(buf: &[u8]) -> RpcResult<ExtremeSummary> {
    let mut r = Reader::new(buf);
    let k = r.u32("summary slot budget")? as usize;
    let n_labels = r.count(4, "summary directions")?;
    let mut tops = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        let n = r.count(SUMMARY_ENTRY_BYTES, "summary entries")?;
        if n > k {
            return Err(RpcError::Malformed(format!(
                "summary direction holds {n} entries, exceeding the K={k} budget"
            )));
        }
        let mut top = Vec::with_capacity(n);
        for _ in 0..n {
            let sim = r.f64("entry similarity")?;
            let row = r.usize("entry row")?;
            let cand = r.u32("entry candidate")?;
            let label = r.u32("entry label")? as usize;
            top.push(ExtremeEntry {
                sim,
                row,
                cand,
                label,
            });
        }
        tops.push(top);
    }
    r.finish("extreme summary")?;
    ExtremeSummary::from_parts(k, tops)
        .map_err(|e| RpcError::Malformed(format!("extreme summary: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut transport = Vec::new();
        write_frame(&mut transport, b"hello").unwrap();
        write_frame(&mut transport, b"").unwrap();
        let mut r = Cursor::new(transport);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut r),
            Err(RpcError::Truncated { .. })
        ));
    }

    #[test]
    fn orderly_eof_is_distinguished_from_truncation() {
        // zero bytes at a frame boundary: orderly disconnect
        let mut empty = Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame_opt(&mut empty), Ok(None)));
        // a partial length prefix is a real truncation
        let mut partial = Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame_opt(&mut partial),
            Err(RpcError::Truncated { .. })
        ));
        // a full prefix with a cut-off payload too
        let mut transport = Vec::new();
        write_frame(&mut transport, b"abcdef").unwrap();
        transport.truncate(7);
        let mut r = Cursor::new(transport);
        assert!(matches!(
            read_frame_opt(&mut r),
            Err(RpcError::Truncated { .. })
        ));
    }

    #[test]
    fn any_single_bit_flip_in_a_frame_is_detected() {
        let mut transport = Vec::new();
        write_frame_tagged(&mut transport, 7, b"payload bytes").unwrap();
        for at in 0..transport.len() {
            for bit in 0..8 {
                let mut damaged = transport.clone();
                damaged[at] ^= 1 << bit;
                let mut r = Cursor::new(&damaged);
                assert!(
                    read_frame_tagged(&mut r).is_err(),
                    "flipping bit {bit} of byte {at} must not read back cleanly"
                );
            }
        }
    }

    #[test]
    fn oversized_frame_announcement_is_rejected() {
        let mut bytes = (u32::MAX).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        let mut r = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut r),
            Err(RpcError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn factors_reject_wrong_semiring() {
        let f = ShardFactors::<u128>::identity(2, 1);
        let bytes = encode_factors(&f);
        assert!(matches!(
            decode_factors::<f64>(&bytes),
            Err(RpcError::Protocol(_))
        ));
        assert_eq!(decode_factors::<u128>(&bytes).unwrap(), f);
    }

    #[test]
    fn summaries_round_trip_and_reject_malformed_bytes() {
        let e = |sim: f64, row: usize, label: usize| ExtremeEntry {
            sim,
            row,
            cand: 1,
            label,
        };
        let summary = ExtremeSummary::from_parts(
            2,
            vec![vec![e(2.0, 0, 1), e(1.0, 3, 0)], vec![e(5.0, 2, 1)]],
        )
        .unwrap();
        let bytes = encode_summary(&summary);
        assert_eq!(decode_summary(&bytes).unwrap(), summary);
        // trailing garbage is malformed
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            decode_summary(&extended),
            Err(RpcError::Malformed(_))
        ));
        // every strict prefix errors cleanly
        for cut in 0..bytes.len() {
            assert!(decode_summary(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    /// A stream shaped like real scans: descending similarities with small
    /// bit-pattern steps, clustered rows, and heavily repeated polynomial
    /// coefficients (each row's events share its excluding polynomial, and
    /// tally counts recur across boundaries).
    fn representative_stream(n_events: usize) -> ShardStream<f64> {
        let k = 3;
        let initial =
            ShardFactors::from_polys(vec![vec![1.0, 2.0, 0.0, 0.0], vec![1.0, 1.0, 1.0, 0.0]], k);
        let mut events = Vec::with_capacity(n_events);
        let mut sim = 9.75f64;
        for i in 0..n_events {
            sim -= 0.25;
            let row = 40 + (i / 4); // 4 candidate events per row
            let coeff = ((i / 8) % 3) as f64; // coefficients recur
            events.push(ShardStreamEvent {
                sim,
                row,
                cand: (i % 4) as u32,
                event: BoundaryEvent {
                    label: i % 2,
                    updated_poly: vec![1.0, coeff, 2.0, 0.0],
                    excluding_poly: vec![1.0, coeff, 0.0, 0.0],
                    boundary_mass: 1.0,
                },
            });
        }
        ShardStream {
            initial,
            total: 16.0,
            events,
        }
    }

    #[test]
    fn stream_round_trips_in_both_encodings() {
        for n in [0usize, 1, 7, 64] {
            let stream = representative_stream(n);
            let delta = encode_stream(&stream);
            assert_eq!(decode_stream::<f64>(&delta).unwrap(), stream, "delta n={n}");
            let raw = encode_stream_raw(&stream);
            assert_eq!(decode_stream::<f64>(&raw).unwrap(), stream, "raw n={n}");
        }
    }

    #[test]
    fn delta_encoding_shrinks_the_dominant_message_class() {
        let stream = representative_stream(256);
        let delta = encode_stream(&stream).len();
        let raw = encode_stream_raw(&stream).len();
        assert!(
            delta * 3 <= raw,
            "delta encoding {delta}B should be ≤ 1/3 of raw {raw}B"
        );
    }

    #[test]
    fn raw_stream_size_matches_the_raw_encoder_exactly() {
        for n in [0usize, 1, 7, 64] {
            let stream = representative_stream(n);
            assert_eq!(
                raw_stream_size(&stream),
                encode_stream_raw(&stream).len(),
                "f64 n={n}"
            );
        }
        // the other two wire semirings (different MIN_SCALAR_BYTES)
        let u_stream: ShardStream<u128> = ShardStream {
            initial: ShardFactors::from_polys(vec![vec![1, 2, 0], vec![1, 1, 1]], 2),
            total: 9,
            events: vec![ShardStreamEvent {
                sim: 0.5,
                row: 3,
                cand: 1,
                event: BoundaryEvent {
                    label: 1,
                    updated_poly: vec![1, 2, 3],
                    excluding_poly: vec![1, 0, 0],
                    boundary_mass: 2,
                },
            }],
        };
        assert_eq!(
            raw_stream_size(&u_stream),
            encode_stream_raw(&u_stream).len()
        );
        use cp_numeric::Possibility;
        let p = Possibility(true);
        let q = Possibility(false);
        let p_stream: ShardStream<Possibility> = ShardStream {
            initial: ShardFactors::from_polys(vec![vec![p, q], vec![p, p]], 1),
            total: p,
            events: vec![ShardStreamEvent {
                sim: 0.25,
                row: 0,
                cand: 0,
                event: BoundaryEvent {
                    label: 0,
                    updated_poly: vec![p, q],
                    excluding_poly: vec![p, p],
                    boundary_mass: q,
                },
            }],
        };
        assert_eq!(
            raw_stream_size(&p_stream),
            encode_stream_raw(&p_stream).len()
        );
    }

    #[test]
    fn unknown_stream_version_is_a_bad_tag() {
        let mut bytes = encode_stream(&representative_stream(2));
        bytes[1] = 9; // byte 0 is the semiring tag, byte 1 the version
        assert!(matches!(
            decode_stream::<f64>(&bytes),
            Err(RpcError::BadTag {
                what: "stream version",
                ..
            })
        ));
    }

    #[test]
    fn hostile_delta_dictionary_indexes_are_malformed() {
        let stream = representative_stream(4);
        let bytes = encode_stream(&stream);
        // every strict prefix errors cleanly
        for cut in 0..bytes.len() {
            assert!(decode_stream::<f64>(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // trailing garbage is malformed
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            decode_stream::<f64>(&extended),
            Err(RpcError::Malformed(_))
        ));
    }

    #[test]
    fn kernel_round_trips() {
        for kernel in [
            Kernel::NegEuclidean,
            Kernel::NegManhattan,
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.25 },
            Kernel::Cosine,
        ] {
            let mut out = Vec::new();
            put_kernel(&mut out, kernel);
            let mut r = Reader::new(&out);
            assert_eq!(get_kernel(&mut r).unwrap(), kernel);
            r.finish("kernel").unwrap();
        }
        let mut r = Reader::new(&[9]);
        assert!(matches!(get_kernel(&mut r), Err(RpcError::BadTag { .. })));
    }
}
