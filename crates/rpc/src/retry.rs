//! The unified retry policy: capped exponential backoff with deterministic
//! seeded jitter, an optional total-time deadline, and the per-shard
//! circuit breaker.
//!
//! Before this module, three call sites each improvised their own retry
//! shape: `connect` slept a fixed `retry_backoff` per attempt, the
//! `open`-on-`Busy` loop borrowed the connect attempt budget with no time
//! bound at all, and request-level failures never retried. One
//! [`RetryPolicy`] now drives all of them (plus the failover path), which
//! is what prevents a thundering herd of synchronized redials when a pool
//! server restarts under a whole fleet: each client's jitter stream is
//! seeded separately, so their backoff schedules decorrelate while staying
//! fully deterministic for tests.
//!
//! The [`CircuitBreaker`] sits above the policy: after `threshold`
//! *consecutive* transport failures against one shard it opens and fails
//! fast (no socket work at all) until `cooldown` has passed, then admits a
//! single half-open probe — the coordinator sends the lightweight
//! [`crate::Request::Ping`] before committing real work. A success closes
//! the breaker; a failed probe re-opens it.

use std::time::{Duration, Instant};

/// SplitMix64 — the tiny, high-quality mixing function used for jitter.
/// Deterministic and dependency-free; identical across platforms.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Capped exponential backoff with deterministic seeded jitter and an
/// optional total-time deadline. Shared by connect, `Busy`/`Expired`
/// retries, and failover.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total tries (first attempt included); `attempts = 1` means no retry.
    pub attempts: u32,
    /// Backoff before the first retry (doubled per further retry).
    pub base: Duration,
    /// Upper bound on any single backoff pause (pre-jitter).
    pub cap: Duration,
    /// Jitter seed; two policies with different seeds decorrelate their
    /// backoff schedules (same seed ⇒ identical schedule — determinism for
    /// tests and chaos runs).
    pub seed: u64,
    /// Optional bound on the *total* time spent across all attempts,
    /// measured from the first attempt. `None` = attempts-bounded only.
    pub deadline: Option<Duration>,
}

impl RetryPolicy {
    /// The pause before retry number `retry` (1-based): `min(cap, base·2^(retry-1))`
    /// scaled by a deterministic jitter factor in `[0.5, 1.0]` ("equal
    /// jitter" — never less than half the nominal pause, never more than
    /// it, so tests can still assert a lower bound on elapsed time).
    pub fn backoff(&self, retry: u32) -> Duration {
        let doublings = retry.saturating_sub(1).min(32);
        let nominal = self
            .base
            .saturating_mul(1u32 << doublings.min(31))
            .min(self.cap.max(self.base));
        let unit = splitmix64(self.seed ^ u64::from(retry)) as f64 / u64::MAX as f64;
        nominal.mul_f64(0.5 + 0.5 * unit)
    }

    /// Whether the policy's total-time deadline has passed since `started`.
    pub fn expired(&self, started: Instant) -> bool {
        self.deadline.is_some_and(|d| started.elapsed() >= d)
    }
}

/// Breaker states, in the classic three-state design.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BreakerState {
    /// Healthy: everything admitted.
    Closed,
    /// Tripped: admit nothing until the cooldown passes.
    Open,
    /// Cooldown passed: admit probes until one succeeds or fails.
    HalfOpen,
}

/// What the breaker says about an admission request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Healthy — proceed normally.
    Allow,
    /// Half-open — proceed, but probe liveness cheaply (`Ping`) before
    /// committing real work.
    Probe,
    /// Open — fail fast without touching the socket.
    FastFail,
}

/// Per-shard circuit breaker: `threshold` *consecutive* transport failures
/// open it; after `cooldown` it half-opens for a probe. `threshold == 0`
/// disables it (always [`Admission::Allow`]).
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    consecutive: u32,
    state: BreakerState,
    opened_at: Option<Instant>,
}

impl CircuitBreaker {
    /// A closed breaker with the given trip threshold and cooldown.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold,
            cooldown,
            consecutive: 0,
            state: BreakerState::Closed,
            opened_at: None,
        }
    }

    /// Ask to perform one operation against the guarded shard.
    pub fn admit(&mut self) -> Admission {
        if self.threshold == 0 {
            return Admission::Allow;
        }
        match self.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => {
                let cooled = self
                    .opened_at
                    .is_some_and(|at| at.elapsed() >= self.cooldown);
                if cooled {
                    self.state = BreakerState::HalfOpen;
                    Admission::Probe
                } else {
                    Admission::FastFail
                }
            }
        }
    }

    /// Record a successful operation (closes the breaker).
    pub fn on_success(&mut self) {
        self.consecutive = 0;
        if self.state != BreakerState::Closed {
            self.state = BreakerState::Closed;
            self.opened_at = None;
            cp_obs::gauge!("rpc.client.breaker_open").add(-1.0);
        }
    }

    /// Record a failed transport operation; trips the breaker at the
    /// threshold (and re-trips a failed half-open probe immediately).
    pub fn on_failure(&mut self) {
        if self.threshold == 0 {
            return;
        }
        self.consecutive = self.consecutive.saturating_add(1);
        let trip = self.consecutive >= self.threshold || self.state == BreakerState::HalfOpen;
        if trip && self.state != BreakerState::Open {
            if self.state == BreakerState::Closed {
                cp_obs::gauge!("rpc.client.breaker_open").add(1.0);
            }
            cp_obs::counter!("rpc.client.breaker_opens").inc();
            self.state = BreakerState::Open;
        }
        if self.state == BreakerState::Open {
            self.opened_at = Some(Instant::now());
        }
    }

    /// Whether the breaker is currently failing fast (open, cooldown not
    /// yet passed) — without mutating state.
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(seed: u64) -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            seed,
            deadline: None,
        }
    }

    #[test]
    fn backoff_grows_exponentially_within_jitter_bounds() {
        let p = policy(42);
        for retry in 1..=8u32 {
            let nominal = Duration::from_millis(10 * (1u64 << (retry - 1))).min(p.cap);
            let b = p.backoff(retry);
            assert!(
                b >= nominal / 2 && b <= nominal,
                "retry {retry}: {b:?} outside [{:?}, {nominal:?}]",
                nominal / 2
            );
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_decorrelated_across_seeds() {
        let (a, b) = (policy(1), policy(1));
        assert!((1..=6).all(|r| a.backoff(r) == b.backoff(r)));
        let c = policy(2);
        assert!(
            (1..=6).any(|r| a.backoff(r) != c.backoff(r)),
            "different seeds should produce different jitter somewhere"
        );
    }

    #[test]
    fn huge_retry_counts_do_not_overflow() {
        let p = policy(7);
        assert!(p.backoff(u32::MAX) <= p.cap);
        let zero_cap = RetryPolicy {
            cap: Duration::ZERO,
            ..policy(7)
        };
        // a cap below base falls back to base, not zero
        assert!(zero_cap.backoff(3) >= zero_cap.base / 2);
    }

    #[test]
    fn deadline_expires_and_none_never_does() {
        let started = Instant::now() - Duration::from_millis(50);
        let bounded = RetryPolicy {
            deadline: Some(Duration::from_millis(10)),
            ..policy(0)
        };
        assert!(bounded.expired(started));
        let fresh = RetryPolicy {
            deadline: Some(Duration::from_secs(3600)),
            ..policy(0)
        };
        assert!(!fresh.expired(started));
        assert!(!policy(0).expired(started));
    }

    #[test]
    fn breaker_trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, Duration::from_secs(3600));
        assert_eq!(b.admit(), Admission::Allow);
        b.on_failure();
        b.on_failure();
        assert_eq!(b.admit(), Admission::Allow, "below threshold stays closed");
        // a success resets the consecutive count
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.admit(), Admission::Allow);
        b.on_failure();
        assert!(b.is_open());
        assert_eq!(b.admit(), Admission::FastFail);
    }

    #[test]
    fn breaker_half_opens_after_cooldown_then_closes_on_probe_success() {
        let mut b = CircuitBreaker::new(1, Duration::ZERO);
        b.on_failure();
        assert!(b.is_open());
        // zero cooldown: the next admit is already a half-open probe
        assert_eq!(b.admit(), Admission::Probe);
        assert_eq!(b.admit(), Admission::Probe, "half-open persists");
        b.on_success();
        assert_eq!(b.admit(), Admission::Allow);
        // and a failed probe re-opens immediately
        b.on_failure();
        assert_eq!(b.admit(), Admission::Probe);
        b.on_failure();
        assert!(b.is_open());
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let mut b = CircuitBreaker::new(0, Duration::ZERO);
        for _ in 0..100 {
            b.on_failure();
        }
        assert_eq!(b.admit(), Admission::Allow);
        assert!(!b.is_open());
    }
}
