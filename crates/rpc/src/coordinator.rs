//! The coordinator client: drives N shard servers through the existing
//! merged-scan logic and exposes the same
//! `step()` / `status()` / `run_to_convergence()` / `run_order()` surface as
//! the in-process [`cp_shard::ShardedSession`].
//!
//! An [`RpcCoordinator`] owns the global problem, the cleaning state and the
//! CP status vector; shard servers own everything partition-local (rows,
//! similarity indexes, pin masks). Per status refresh the coordinator asks
//! every server for one batched `Possibility` stream and merges them with
//! [`cp_shard::certain_label_from_streams`]; per greedy selection it fetches
//! each shard's base probability stream once and, for every candidate pin,
//! one hypothetical stream from the *owning* shard only — every other
//! shard's stream is replayed as-is, mirroring the in-process engine's
//! "only the owner's mask changes" structure. Because the streams are
//! produced by the same `ShardScan` code and merged by the same
//! [`cp_shard::merged_scan_sources`] loop in the same shard order, the
//! coordinator's status vectors, greedy choices and cleaned orders are
//! **identical** to `ShardedSession`'s — property-tested over real loopback
//! sockets in `tests/rpc_equivalence.rs`.
//!
//! Selection runs the shared *incremental* loop
//! ([`cp_clean::select_next_incremental`]: relevance-based score caching
//! plus entropy-bound pruning), and the hypothetical scans it still needs
//! are *pipelined*: every response frame echoes its request's id, so a
//! selection step keeps a bounded window of independent `Scan` requests in
//! flight per connection ([`ShardClient::scan_many`]) instead of paying one
//! round trip each. Base streams are cached per validation point and
//! refetched only from shards whose pin mask moved. The from-scratch
//! serialized scorer survives as
//! [`RpcCoordinator::try_select_next_serialized`] — the reference the
//! equivalence tests pit the incremental path against.

use crate::codec::{
    decode_stream, decode_summary, read_frame_tagged, write_frame_tagged, WireSemiring,
};
use crate::error::{RpcError, RpcResult};
use crate::fault::{FaultPlan, FaultyTransport};
use crate::journal::ShardJournal;
use crate::proto::{
    decode_response, encode_request, OpenShard, Request, Response, SessionId, ShardStatus,
};
use crate::retry::{Admission, CircuitBreaker, RetryPolicy};
use crate::spill::{certain_label_over_runs, spill_stream, LazyRunCursor, SpillSource};
use cp_clean::metrics::CleaningRun;
use cp_clean::{
    pick_min_expected_entropy, select_next_incremental, CleaningEngine, CleaningProblem,
    CleaningState, RunOptions, SelectionBackend, SelectionCache,
};
use cp_core::{DatasetShard, ExtremeSummary, Pins, Q2Algorithm, Q2Result};
use cp_knn::Label;
use cp_numeric::stats::entropy_bits;
use cp_numeric::Possibility;
use cp_shard::scan::{
    certain_label_from_sources, certain_label_from_streams, certain_label_from_summaries,
    q2_from_streams_with_algorithm,
};
use cp_shard::{merged_scan_sources, ShardStream, StreamCursor};
use cp_store::Run;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Connection policy for a [`ShardClient`] — the transport-hardening knobs
/// for serving beyond loopback.
///
/// *Timeouts* bound how long a coordinator can hang on an unresponsive
/// peer: `connect_timeout` caps the TCP handshake, `read_timeout` /
/// `write_timeout` cap each half of a request round trip (an expired
/// timeout surfaces as an [`RpcError::Io`]).
///
/// *Retries* share one [`RetryPolicy`] (see [`ClientConfig::retry_policy`]):
/// `connect_retries` extra attempts under capped exponential backoff
/// (`retry_backoff` base, `backoff_cap` ceiling) with deterministic seeded
/// jitter (`retry_jitter_seed`) and an optional total-time bound
/// (`retry_deadline`). The same policy drives connection establishment,
/// `Busy`/`Expired` retries, and the coordinator's request-level recovery
/// loop. The client itself never blindly retries an in-flight request:
/// mid-session failures surface to the caller, and
/// [`RpcCoordinator`]'s recovery path owns the retry decision — `Step`
/// carries the cleaned-count it expects and is idempotent on the server,
/// so a reconnect-and-retransmit (or a full failover replay through
/// [`crate::journal::ShardJournal`]) never double-pins.
///
/// *Failover*: when a transport failure cannot be cured by re-dialing the
/// same address, the coordinator re-dials `fallback_addrs` in rotation,
/// re-`Open`s and replays its journal. *Deadlines*: `request_deadline`
/// stamps every request with a wire-carried budget the server sheds
/// expired work against ([`RpcError::Expired`]). *Breakers*:
/// `breaker_threshold` consecutive failures against one shard fail fast
/// for `breaker_cooldown`, then half-open-probe with the lightweight
/// `Ping`. *Chaos*: a seeded [`FaultPlan`] injects deterministic transport
/// faults on everything this client sends.
///
/// The default is the pre-hardening behavior: no timeouts, no retries.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Cap on each TCP connect attempt (`None` = the OS default).
    pub connect_timeout: Option<Duration>,
    /// Cap on blocking reads of one response (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Cap on blocking writes of one request (`None` = block forever).
    pub write_timeout: Option<Duration>,
    /// Extra connect attempts after the first fails with an I/O error.
    pub connect_retries: u32,
    /// Backoff before the first retry (doubled per further retry, capped by
    /// `backoff_cap`, jittered by `retry_jitter_seed`).
    pub retry_backoff: Duration,
    /// Ceiling on any single (pre-jitter) backoff pause.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter: clients seeded apart
    /// decorrelate their redial storms; equal seeds reproduce exactly.
    pub retry_jitter_seed: u64,
    /// Bound on the *total* time one retry loop may spend across all its
    /// attempts. `None` = attempts-bounded only.
    pub retry_deadline: Option<Duration>,
    /// Replacement servers for failover, tried in rotation after re-dialing
    /// the failed shard's own address. Empty = failover only ever re-dials
    /// the original address.
    pub fallback_addrs: Vec<String>,
    /// When set, every request ships inside a `Deadline` envelope with this
    /// budget; the server sheds requests whose budget expired in its queue
    /// (retryable [`RpcError::Expired`]) instead of doing dead work.
    pub request_deadline: Option<Duration>,
    /// Consecutive transport failures against one shard before its circuit
    /// breaker opens (fail fast, no socket work). `0` disables breakers.
    pub breaker_threshold: u32,
    /// How long an open breaker fails fast before admitting a half-open
    /// `Ping` probe.
    pub breaker_cooldown: Duration,
    /// Deterministic fault injection on everything this client writes (see
    /// [`FaultPlan`]); dials can also be refused. `None` = clean transport.
    pub chaos: Option<FaultPlan>,
    /// Out-of-core knob: a fetched base/status stream with at least this
    /// many boundary events is spilled to an immutable sorted on-disk run
    /// (`cp-store`) instead of held in RAM, and scanned back through
    /// [`crate::LazyRunCursor`] — `0` spills every stream. `None` (the
    /// default) falls back to the `CP_SPILL_THRESHOLD` environment
    /// variable, and spilling stays off when that is unset too.
    /// `Some(usize::MAX)` forces spilling off even when the environment
    /// variable is set — the pin for callers (exact-ledger tests) that
    /// need the in-RAM status path regardless of the suite-wide regime.
    pub spill_threshold: Option<usize>,
    /// Where spilled runs live. `None` = a fresh process-unique directory
    /// under the OS temp dir, removed when the coordinator drops.
    pub spill_dir: Option<PathBuf>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: None,
            read_timeout: None,
            write_timeout: None,
            connect_retries: 0,
            retry_backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
            retry_jitter_seed: 0,
            retry_deadline: None,
            fallback_addrs: Vec::new(),
            request_deadline: None,
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_millis(100),
            chaos: None,
            spill_threshold: None,
            spill_dir: None,
        }
    }
}

impl ClientConfig {
    /// The one [`RetryPolicy`] every retry loop under this config runs:
    /// `connect_retries + 1` total attempts, capped exponential backoff
    /// with seeded jitter, optional total-time deadline.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            attempts: self.connect_retries.saturating_add(1),
            base: self.retry_backoff,
            cap: self.backoff_cap,
            seed: self.retry_jitter_seed,
            deadline: self.retry_deadline,
        }
    }
}

/// The client's transport: a plain socket, or one wrapped in seeded fault
/// injection ([`ClientConfig::chaos`]). Timeouts are set on the underlying
/// `TcpStream` before wrapping, so they apply either way.
#[derive(Debug)]
enum Conn {
    Plain(TcpStream),
    Chaos(FaultyTransport<TcpStream>),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Plain(s) => s.read(buf),
            Conn::Chaos(t) => t.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Plain(s) => s.write(buf),
            Conn::Chaos(t) => t.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Plain(s) => s.flush(),
            Conn::Chaos(t) => t.flush(),
        }
    }
}

/// How many pipelined requests [`ShardClient::scan_many`] keeps in flight
/// per connection: enough to hide the per-request round-trip latency, small
/// enough that neither side's socket buffers fill with unread frames while
/// the peer blocks writing (which would deadlock the connection).
const SCAN_WINDOW: usize = 8;

/// A connection to one shard server.
#[derive(Debug)]
pub struct ShardClient {
    stream: Conn,
    /// Resolved peer addresses and the policy they were dialed under, kept
    /// so [`ShardClient::reconnect`] can re-dial the same server.
    peers: Vec<SocketAddr>,
    cfg: ClientConfig,
    /// Id stamped on the next request frame. The server echoes each id on
    /// its response, which is what lets [`ShardClient::scan_many`] keep
    /// several requests in flight and still pair every reply.
    next_id: u32,
    /// Set after a transport-level failure (I/O error, timeout, mid-frame
    /// truncation, oversized frame) or a response-id mismatch. The stream
    /// may sit mid-frame or hold replies this client no longer tracks —
    /// reusing it could hand the *next* call a stale answer. A poisoned
    /// client refuses further calls with a typed error;
    /// [`ShardClient::reconnect`] recovers.
    poisoned: bool,
    /// The server-minted session this client drives (`0` = none opened).
    /// Sessions belong to the server process, not the connection, so
    /// [`ShardClient::reconnect`] keeps it — which is what lets the
    /// idempotent-`Step` retransmission land on the *same* session's state
    /// after a transport failure.
    session: SessionId,
    /// Per-peer round-trip-time histogram (`rpc.client.rtt_us.<addr>`),
    /// resolved once at connect so the per-call cost is one record.
    rtt_hist: cp_obs::Histogram,
}

impl ShardClient {
    /// Connect to a server with the default (no-timeout, no-retry) policy.
    /// `TCP_NODELAY` is set: the protocol is strict request/response with
    /// small frames, where Nagle batching only adds latency.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> RpcResult<Self> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connect under an explicit [`ClientConfig`]: bounded retries on I/O
    /// failure during establishment, then per-call read/write timeouts for
    /// the connection's lifetime.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, cfg: &ClientConfig) -> RpcResult<Self> {
        let peers: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = Self::establish(&peers, cfg)?;
        let rtt_hist = match peers.first() {
            Some(peer) => cp_obs::histogram(&format!("rpc.client.rtt_us.{peer}")),
            None => cp_obs::histogram("rpc.client.rtt_us.unresolved"),
        };
        Ok(ShardClient {
            stream,
            peers,
            cfg: cfg.clone(),
            next_id: 0,
            poisoned: false,
            session: 0,
            rtt_hist,
        })
    }

    /// Drop the (possibly poisoned) connection and dial the same peer again
    /// under the same policy. On success the client is fresh — unpoisoned,
    /// request ids restarting from zero — but still bound to its session:
    /// sessions belong to the server process and survive reconnects.
    pub fn reconnect(&mut self) -> RpcResult<()> {
        cp_obs::counter!("rpc.client.reconnects").inc();
        self.stream = Self::establish(&self.peers, &self.cfg)?;
        self.next_id = 0;
        self.poisoned = false;
        Ok(())
    }

    /// Re-point this client at a (possibly different) server under the same
    /// policy — the failover half-step. Unlike [`ShardClient::reconnect`]
    /// the session binding does **not** survive: the new server has no
    /// session for us until the caller re-`Open`s (a
    /// [`crate::journal::ShardJournal::replay`] does exactly that).
    pub fn redial<A: ToSocketAddrs>(&mut self, addr: A) -> RpcResult<()> {
        let peers: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = Self::establish(&peers, &self.cfg)?;
        self.rtt_hist = match peers.first() {
            Some(peer) => cp_obs::histogram(&format!("rpc.client.rtt_us.{peer}")),
            None => cp_obs::histogram("rpc.client.rtt_us.unresolved"),
        };
        self.peers = peers;
        self.stream = stream;
        self.next_id = 0;
        self.poisoned = false;
        self.session = 0;
        Ok(())
    }

    /// The remembered peer address this client (re)dials, as `host:port`.
    pub fn peer_addr(&self) -> Option<String> {
        self.peers.first().map(|p| p.to_string())
    }

    fn establish(peers: &[SocketAddr], cfg: &ClientConfig) -> RpcResult<Conn> {
        let policy = cfg.retry_policy();
        let started = Instant::now();
        let mut last: Option<RpcError> = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                cp_obs::counter!("rpc.client.connect_retries").inc();
                let pause = policy.backoff(attempt);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                if policy.expired(started) {
                    break;
                }
            }
            // a chaos plan can refuse the dial outright, before any socket
            // work — the deterministic stand-in for a crashed listener
            if let Some(plan) = &cfg.chaos {
                if plan.should_refuse_dial() {
                    last = Some(RpcError::Io(std::io::Error::new(
                        std::io::ErrorKind::ConnectionRefused,
                        "dial refused by fault injection",
                    )));
                    continue;
                }
            }
            match Self::connect_once(peers, cfg) {
                Ok(stream) => {
                    return Ok(match &cfg.chaos {
                        Some(plan) => Conn::Chaos(FaultyTransport::new(stream, plan.schedule())),
                        None => Conn::Plain(stream),
                    })
                }
                // only transport-level failures are worth another attempt
                Err(e @ RpcError::Io(_)) => last = Some(e),
                Err(other) => return Err(other),
            }
        }
        Err(last.unwrap_or_else(|| RpcError::Protocol("no socket address resolved".into())))
    }

    fn connect_once(peers: &[SocketAddr], cfg: &ClientConfig) -> RpcResult<TcpStream> {
        // try each resolved address like `TcpStream::connect` does
        let mut last_io: Option<std::io::Error> = None;
        let mut connected = None;
        for sock_addr in peers {
            let attempt = match cfg.connect_timeout {
                None => TcpStream::connect(sock_addr),
                Some(timeout) => TcpStream::connect_timeout(sock_addr, timeout),
            };
            match attempt {
                Ok(s) => {
                    connected = Some(s);
                    break;
                }
                Err(e) => last_io = Some(e),
            }
        }
        let Some(stream) = connected else {
            return Err(RpcError::Io(last_io.unwrap_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to no socket addresses",
                )
            })));
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(cfg.read_timeout)?;
        stream.set_write_timeout(cfg.write_timeout)?;
        Ok(stream)
    }

    /// Whether a transport failure has made this connection unusable (see
    /// the `poisoned` field docs; every later [`ShardClient::call`] fails).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// One request/response round trip.
    ///
    /// A transport-level failure (I/O error/timeout, truncated or oversized
    /// frame, response-id mismatch) **poisons** the connection: the
    /// request/response pairing can no longer be trusted, so every
    /// subsequent call fails with a typed [`RpcError::Protocol`] instead of
    /// silently reading a stale response. Payload-level decode failures (a
    /// complete frame that doesn't parse) leave the stream at a frame
    /// boundary and do not poison.
    pub fn call(&mut self, req: &Request) -> RpcResult<Response> {
        let watch = cp_obs::Stopwatch::start();
        let id = self.send(req)?;
        let resp = self.recv(id)?;
        // completed round trips only — a timeout or transport failure is
        // counted by `recv`, not smeared into the latency distribution
        let us = watch.elapsed_us();
        self.rtt_hist.record_us(us);
        cp_obs::histogram!("rpc.client.rtt_us").record_us(us);
        Ok(resp)
    }

    /// Write one request frame without waiting for its reply; returns the
    /// id the reply will echo. The pipelining half-step
    /// [`ShardClient::scan_many`] builds on.
    fn send(&mut self, req: &Request) -> RpcResult<u32> {
        if self.poisoned {
            return Err(RpcError::Protocol(
                "connection poisoned by an earlier transport failure; reconnect to recover".into(),
            ));
        }
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        // under a request deadline every request ships inside an envelope:
        // the server sheds it (retryable Expired) if the budget passes while
        // it queues, instead of doing work nobody is waiting for
        let payload = match self.cfg.request_deadline {
            Some(d) if !matches!(req, Request::Deadline { .. }) => {
                // a live deadline is never the zero "pre-expired" sentinel
                let budget_us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1);
                encode_request(&Request::Deadline {
                    budget_us,
                    inner: Box::new(req.clone()),
                })
            }
            _ => encode_request(req),
        };
        match write_frame_tagged(&mut self.stream, id, &payload) {
            Ok(()) => Ok(id),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Read the next response frame, which must echo `expect_id`: the
    /// server answers strictly in request order, so a mismatch means the
    /// pairing is lost and the connection poisons.
    fn recv(&mut self, expect_id: u32) -> RpcResult<Response> {
        if self.poisoned {
            return Err(RpcError::Protocol(
                "connection poisoned by an earlier transport failure; reconnect to recover".into(),
            ));
        }
        match read_frame_tagged(&mut self.stream) {
            Ok((id, frame)) if id == expect_id => decode_response(&frame),
            Ok((id, _)) => {
                self.poisoned = true;
                Err(RpcError::Protocol(format!(
                    "response id {id} does not match request id {expect_id}"
                )))
            }
            Err(e) => {
                // the stream may sit mid-frame or hold a late response
                self.poisoned = true;
                if matches!(
                    &e,
                    RpcError::Io(io)
                        if io.kind() == std::io::ErrorKind::TimedOut
                            || io.kind() == std::io::ErrorKind::WouldBlock
                ) {
                    cp_obs::counter!("rpc.client.timeouts").inc();
                } else {
                    cp_obs::counter!("rpc.client.transport_errors").inc();
                }
                Err(e)
            }
        }
    }

    /// The typed error for a response that isn't the expected payload kind:
    /// remote rejections, retryable `Busy`/`Expired` shedding, and genuine
    /// protocol surprises, uniformly across every typed helper.
    fn unexpected(kind: &'static str, resp: Response) -> RpcError {
        match resp {
            Response::Error(msg) => RpcError::Remote(msg),
            Response::Busy(msg) => RpcError::Busy(msg),
            Response::Expired(msg) => RpcError::Expired(msg),
            other => RpcError::Protocol(format!("expected {kind}, got {other:?}")),
        }
    }

    /// Send `req` and require the bare `Ok` acknowledgement (`Shutdown`,
    /// and any session-scoped request whose reply carries no payload).
    pub fn expect_ok(&mut self, req: &Request) -> RpcResult<()> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected("Ok", other)),
        }
    }

    /// The lightweight liveness probe: no session, no state, one tiny round
    /// trip — what a half-open circuit breaker sends before committing real
    /// work to a possibly-still-dead shard.
    pub fn ping(&mut self) -> RpcResult<()> {
        self.expect_ok(&Request::Ping)
    }

    /// The server-minted session this client drives (`0` until
    /// [`ShardClient::open`] succeeds).
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Open a cleaning session over a shard, binding this client to the
    /// minted [`SessionId`] and returning the opened row count. An
    /// admission-control refusal surfaces as the retryable
    /// [`RpcError::Busy`].
    pub fn open(&mut self, open: OpenShard) -> RpcResult<usize> {
        match self.call(&Request::Open(Box::new(open)))? {
            Response::Opened { session, n_rows } => {
                self.session = session;
                Ok(n_rows)
            }
            other => Err(Self::unexpected("Opened", other)),
        }
    }

    /// Free this client's session on the server (the connection stays
    /// usable; a later [`ShardClient::open`] can mint a fresh one).
    pub fn close(&mut self) -> RpcResult<()> {
        let session = self.session;
        self.session = 0;
        self.expect_ok(&Request::Close { session })
    }

    /// Apply one idempotent cleaning step to this client's session.
    pub fn step(&mut self, local_row: u32, expect_cleaned: u32) -> RpcResult<()> {
        let session = self.session;
        self.expect_ok(&Request::Step {
            session,
            local_row,
            expect_cleaned,
        })
    }

    /// Publish the coordinator's global CP status bits to this client's
    /// session.
    pub fn sync_status(&mut self, bits: Vec<bool>) -> RpcResult<()> {
        let session = self.session;
        self.expect_ok(&Request::SyncStatus { session, bits })
    }

    /// Request one batched scan stream in semiring `S`.
    pub fn scan<S: WireSemiring>(
        &mut self,
        val: usize,
        k: usize,
        pins: Option<&Pins>,
    ) -> RpcResult<ShardStream<S>> {
        let req = Request::Scan {
            session: self.session,
            val: val as u32,
            k: k as u32,
            semiring: S::TAG,
            pins: pins.cloned(),
        };
        match self.call(&req)? {
            Response::Stream(bytes) => decode_stream::<S>(&bytes),
            other => Err(Self::unexpected("Stream", other)),
        }
    }

    /// Pipeline a batch of `(val, pins)` scan requests in semiring `S`:
    /// keep up to `SCAN_WINDOW` (8) requests in flight on this connection and
    /// collect the responses in request order. One greedy selection step
    /// needs `set_size(row)` mutually independent hypothetical streams from
    /// the owning shard; serializing them pays a full network round trip
    /// each, while pipelining overlaps them all on the one connection.
    ///
    /// On a per-response failure the replies still in flight are drained so
    /// the connection stays at a frame boundary and remains usable
    /// (transport failures have already poisoned it, which stops the
    /// drain); the first failure is returned.
    pub fn scan_many<S: WireSemiring>(
        &mut self,
        k: usize,
        scans: Vec<(usize, Option<Pins>)>,
    ) -> RpcResult<Vec<ShardStream<S>>> {
        let mut out = Vec::with_capacity(scans.len());
        let mut pending: VecDeque<u32> = VecDeque::new();
        let mut failure: Option<RpcError> = None;
        for (val, pins) in scans {
            if pending.len() == SCAN_WINDOW {
                let id = pending.pop_front().expect("window is non-empty");
                match self.recv_stream::<S>(id) {
                    Ok(stream) => out.push(stream),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            match self.send(&Request::Scan {
                session: self.session,
                val: val as u32,
                k: k as u32,
                semiring: S::TAG,
                pins,
            }) {
                Ok(id) => {
                    pending.push_back(id);
                    // in-flight window occupancy, sampled after each send
                    // (values 1..=SCAN_WINDOW land in distinct µs-ladder
                    // buckets, so the histogram doubles as an exact tally)
                    cp_obs::histogram!("rpc.client.scan_window").record_us(pending.len() as u64);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        while let Some(id) = pending.pop_front() {
            if self.poisoned {
                break;
            }
            match (self.recv_stream::<S>(id), &failure) {
                (Ok(stream), None) => out.push(stream),
                (Ok(_), Some(_)) => {} // draining past the first failure
                (Err(e), None) => failure = Some(e),
                (Err(_), Some(_)) => {}
            }
        }
        match failure {
            None => Ok(out),
            Some(e) => Err(e),
        }
    }

    fn recv_stream<S: WireSemiring>(&mut self, id: u32) -> RpcResult<ShardStream<S>> {
        match self.recv(id)? {
            Response::Stream(bytes) => decode_stream::<S>(&bytes),
            other => Err(Self::unexpected("Stream", other)),
        }
    }

    /// Request one rank-ordered extreme summary — the binary-Q1 status
    /// exchange: `O(|Y|·K)` entries instead of a whole scan stream.
    pub fn extreme_summary(
        &mut self,
        val: usize,
        k: usize,
        pins: Option<&Pins>,
    ) -> RpcResult<ExtremeSummary> {
        let req = Request::ExtremeSummary {
            session: self.session,
            val: val as u32,
            k: k as u32,
            pins: pins.cloned(),
        };
        match self.call(&req)? {
            Response::Summary(bytes) => decode_summary(&bytes),
            other => Err(Self::unexpected("Summary", other)),
        }
    }

    /// Fetch the server's live metrics: session `0` for the whole remote
    /// process, a real [`SessionId`] (e.g. [`ShardClient::session`]) to
    /// restrict to that session's own counters. The returned
    /// [`cp_obs::Snapshot`] decodes on this side regardless of whether this
    /// build compiled its *own* metrics out.
    pub fn stats(&mut self, session: SessionId) -> RpcResult<cp_obs::Snapshot> {
        match self.call(&Request::Stats { session })? {
            Response::Stats(bytes) => cp_obs::Snapshot::decode(&bytes)
                .map_err(|e| RpcError::Malformed(format!("stats snapshot: {e}"))),
            other => Err(Self::unexpected("Stats", other)),
        }
    }

    /// Ask for this client's session view on the server.
    pub fn status(&mut self) -> RpcResult<ShardStatus> {
        let req = Request::Status {
            session: self.session,
        };
        match self.call(&req)? {
            Response::Status(status) => Ok(status),
            other => Err(Self::unexpected("Status", other)),
        }
    }
}

/// A cleaning run distributed over shard servers: the multi-process twin of
/// [`cp_shard::ShardedSession`], answering through the same merged-scan
/// algebra over decoded streams instead of live scans.
#[derive(Debug)]
pub struct RpcCoordinator {
    problem: Arc<CleaningProblem>,
    opts: RunOptions,
    shards: Vec<DatasetShard>,
    /// `owner[row]` = index of the shard (and server) owning a global row.
    owner: Vec<usize>,
    /// The client policy every per-shard connection (and failover re-dial)
    /// runs under.
    cfg: ClientConfig,
    /// One connection per shard; `RefCell` because the engine surface takes
    /// `&self` for selection while each call is a socket round trip.
    clients: Vec<RefCell<ShardClient>>,
    /// Per-shard rebuild recipes: the canonical `Open` payload plus the
    /// ordered applied-pin log — everything failover needs to replay a lost
    /// session onto a replacement server.
    journals: Vec<RefCell<ShardJournal>>,
    /// Per-shard circuit breakers over the recovery loop.
    breakers: Vec<RefCell<CircuitBreaker>>,
    /// Rotating cursor into [`ClientConfig::fallback_addrs`], shared by all
    /// shards so successive failovers spread over the replacement pool.
    fallback_cursor: Cell<usize>,
    /// Completed failovers (exact-ledger twin of `rpc.client.failovers`).
    failovers: Cell<u64>,
    /// Pins replayed by failovers (twin of `rpc.client.pins_replayed`).
    pins_replayed: Cell<u64>,
    /// Coordinator-side mirror of each server's local pin mask.
    masks: Vec<Pins>,
    /// Per-shard pin counter, bumped once per [`RpcCoordinator::clean`] on
    /// the owning shard. It is both the cleaned-count an idempotent `Step`
    /// carries and the staleness key of `base_streams`.
    mask_epochs: Vec<u64>,
    state: CleaningState,
    cp: Vec<bool>,
    /// Global effective K, computed once from the full dataset.
    k: usize,
    /// Incremental-selection state shared with the in-process engines
    /// (pin-log epochs, per-point relevance, memoized entropies).
    sel: RefCell<SelectionCache>,
    /// Per-validation-point base streams tagged with the `mask_epochs` they
    /// were fetched under; only shards whose mask moved are refetched
    /// ([`RpcCoordinator::with_base_streams`]).
    base_streams: RefCell<Vec<Option<BaseStreams>>>,
    /// Out-of-core policy; `None` keeps every stream in RAM.
    spill: Option<SpillState>,
}

/// One cached base-stream set: the per-shard mask epochs at capture time
/// plus one decoded `f64` stream per shard (in RAM or spilled to disk).
type BaseStreams = (Vec<u64>, Vec<CachedStream>);

/// The resolved out-of-core policy of one coordinator (see
/// [`ClientConfig::spill_threshold`]).
#[derive(Debug)]
struct SpillState {
    /// Streams with at least this many boundary events go to disk.
    threshold: usize,
    /// Where run files are written.
    dir: PathBuf,
    /// Whether this coordinator created `dir` (and removes it on drop).
    owned: bool,
    /// Uniquifier for run file names.
    seq: Cell<u64>,
}

impl SpillState {
    /// The policy a [`ClientConfig`] asks for: the explicit threshold, or
    /// the `CP_SPILL_THRESHOLD` environment variable (the hook CI uses to
    /// force every suite scan through [`crate::LazyRunCursor`]), or off.
    fn resolve(cfg: &ClientConfig) -> RpcResult<Option<Self>> {
        let env = || {
            std::env::var("CP_SPILL_THRESHOLD")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        };
        let Some(threshold) = cfg.spill_threshold.or_else(env) else {
            return Ok(None);
        };
        if threshold == usize::MAX {
            // explicitly disabled: no stream can reach the threshold, and a
            // spill state that never spills would still reroute status
            // checks off the summary fast path
            return Ok(None);
        }
        let (dir, owned) = match &cfg.spill_dir {
            Some(dir) => (dir.clone(), false),
            None => {
                static NEXT_DIR: AtomicU64 = AtomicU64::new(0);
                let dir = std::env::temp_dir().join(format!(
                    "cp-spill-{}-{}",
                    std::process::id(),
                    NEXT_DIR.fetch_add(1, Ordering::Relaxed)
                ));
                (dir, true)
            }
        };
        std::fs::create_dir_all(&dir)?;
        Ok(Some(SpillState {
            threshold,
            dir,
            owned,
            seq: Cell::new(0),
        }))
    }

    fn next_path(&self, tag: &str) -> PathBuf {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        self.dir.join(format!("{tag}-{seq}.run"))
    }
}

/// An on-disk run owned by this coordinator; the file is deleted when the
/// owner (a cache entry, or a status check's scratch set) is dropped.
#[derive(Debug)]
struct SpilledRun(Run);

impl Drop for SpilledRun {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(self.0.path());
    }
}

/// One cached per-shard base stream: held in RAM, or spilled as a run.
#[derive(Debug)]
enum CachedStream {
    Ram(ShardStream<f64>),
    Spilled(SpilledRun),
}

impl CachedStream {
    /// A merged-scan source over this entry. Disk entries hand back a lazy
    /// cursor, so a scan that early-exits before reaching the run never
    /// pays its block I/O.
    fn source(&self) -> RpcResult<SpillSource<'_, f64>> {
        match self {
            CachedStream::Ram(st) => Ok(SpillSource::Ram(st.cursor())),
            CachedStream::Spilled(run) => Ok(SpillSource::Disk(LazyRunCursor::new(&run.0)?)),
        }
    }
}

impl RpcCoordinator {
    /// Connect to shard servers and distribute the problem: partition the
    /// dataset over (at most) `addrs.len()` shards — clamped to the row
    /// count exactly like [`cp_core::IncompleteDataset::partition`] — ship
    /// each shard to its server via [`Request::Open`], and evaluate the
    /// initial global CP status by merged stream scans. Servers beyond the
    /// clamped arity are left untouched.
    ///
    /// # Panics
    /// Panics if `addrs` is empty or the problem does not validate.
    pub fn connect<A: ToSocketAddrs>(
        problem: &CleaningProblem,
        addrs: &[A],
        opts: &RunOptions,
    ) -> RpcResult<Self> {
        Self::connect_with(problem, addrs, opts, &ClientConfig::default())
    }

    /// [`RpcCoordinator::connect`] under an explicit [`ClientConfig`]
    /// (connect/read/write timeouts and bounded connect retries per shard
    /// server).
    ///
    /// # Panics
    /// Panics if `addrs` is empty or the problem does not validate.
    pub fn connect_with<A: ToSocketAddrs>(
        problem: &CleaningProblem,
        addrs: &[A],
        opts: &RunOptions,
        client_cfg: &ClientConfig,
    ) -> RpcResult<Self> {
        assert!(!addrs.is_empty(), "need at least one shard server");
        problem.validate();
        let problem = Arc::new(problem.clone());
        let shards = problem.dataset.partition(addrs.len());
        let mut owner = vec![0usize; problem.dataset.len()];
        for (s, sh) in shards.iter().enumerate() {
            for row in sh.rows() {
                owner[row] = s;
            }
        }
        let k = problem.config.k_eff(problem.dataset.len());
        let mut clients = Vec::with_capacity(shards.len());
        let mut journals = Vec::with_capacity(shards.len());
        for (sh, addr) in shards.iter().zip(addrs) {
            let mut client = ShardClient::connect_with(addr, client_cfg)?;
            let open = Arc::new(OpenShard {
                start: sh.start(),
                n_labels: sh.dataset().n_labels(),
                k: problem.config.k,
                kernel: problem.config.kernel,
                n_threads: opts.n_threads.max(1),
                examples: (0..sh.len())
                    .map(|i| {
                        let ex = sh.dataset().example(i);
                        (ex.label, ex.candidates.clone())
                    })
                    .collect(),
                val_x: problem.val_x.as_ref().clone(),
                truth_choice: slice_choices(&problem.truth_choice, sh),
                default_choice: slice_choices(&problem.default_choice, sh),
            });
            // a Busy refusal (session cap on a multi-tenant server) and a
            // deadline-shed Open are retryable under the same unified
            // policy as connect itself — jittered capped backoff with the
            // policy's total-time deadline — since load drains as other
            // coordinators close their sessions
            let policy = client_cfg.retry_policy();
            let started = Instant::now();
            let mut n_rows = client.open((*open).clone());
            for retry in 1..policy.attempts.max(1) {
                match &n_rows {
                    Err(e) if e.is_retryable() => {
                        match e {
                            RpcError::Expired(_) => {
                                cp_obs::counter!("rpc.client.expired_retries").inc()
                            }
                            _ => cp_obs::counter!("rpc.client.busy_retries").inc(),
                        }
                        let pause = policy.backoff(retry);
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                        if policy.expired(started) {
                            break;
                        }
                        n_rows = client.open((*open).clone());
                    }
                    _ => break,
                }
            }
            let n_rows = n_rows?;
            if n_rows != sh.len() {
                return Err(RpcError::Protocol(format!(
                    "server opened {n_rows} rows, expected {}",
                    sh.len()
                )));
            }
            clients.push(RefCell::new(client));
            journals.push(RefCell::new(ShardJournal::new(open)));
        }
        let masks: Vec<Pins> = shards.iter().map(|sh| Pins::none(sh.len())).collect();
        let mask_epochs = vec![0u64; shards.len()];
        let state = CleaningState::new(&problem);
        let cp = vec![false; problem.val_x.len()];
        let sel = RefCell::new(SelectionCache::new(
            problem.dataset.len(),
            problem.val_x.len(),
        ));
        let base_streams = RefCell::new((0..problem.val_x.len()).map(|_| None).collect());
        let spill = SpillState::resolve(client_cfg)?;
        let breakers = (0..shards.len())
            .map(|_| {
                RefCell::new(CircuitBreaker::new(
                    client_cfg.breaker_threshold,
                    client_cfg.breaker_cooldown,
                ))
            })
            .collect();
        let mut coordinator = RpcCoordinator {
            problem,
            opts: opts.clone(),
            shards,
            owner,
            cfg: client_cfg.clone(),
            clients,
            journals,
            breakers,
            fallback_cursor: Cell::new(0),
            failovers: Cell::new(0),
            pins_replayed: Cell::new(0),
            masks,
            mask_epochs,
            state,
            cp,
            k,
            sel,
            base_streams,
            spill,
        };
        coordinator.try_refresh_status()?;
        Ok(coordinator)
    }

    /// The (global) problem this coordinator cleans.
    pub fn problem(&self) -> &CleaningProblem {
        &self.problem
    }

    /// Number of shards actually served (the clamped partition arity).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The dataset partition.
    pub fn shards(&self) -> &[DatasetShard] {
        &self.shards
    }

    /// The shard owning a global row.
    pub fn owner_of(&self, row: usize) -> usize {
        self.owner[row]
    }

    /// The global cleaning progress so far.
    pub fn state(&self) -> &CleaningState {
        &self.state
    }

    /// Per-validation-point global CP status under the current pins,
    /// maintained incrementally by merged stream scans.
    pub fn status(&self) -> &[bool] {
        &self.cp
    }

    /// Number of validation points currently certainly predicted.
    pub fn n_certain(&self) -> usize {
        self.cp.iter().filter(|&&c| c).count()
    }

    /// `true` iff every validation point is certainly predicted.
    pub fn converged(&self) -> bool {
        self.cp.iter().all(|&c| c)
    }

    /// Rows cleaned so far.
    pub fn n_cleaned(&self) -> usize {
        self.state.n_cleaned()
    }

    /// Dirty rows not yet cleaned (global row ids).
    pub fn remaining(&self) -> Vec<usize> {
        self.state.remaining(&self.problem)
    }

    /// Completed failovers so far — the exact-ledger twin of the
    /// `rpc.client.failovers` counter, scoped to this coordinator.
    pub fn failover_count(&self) -> u64 {
        self.failovers.get()
    }

    /// Pins replayed by failovers so far — the exact-ledger twin of the
    /// `rpc.client.pins_replayed` counter, scoped to this coordinator.
    pub fn pins_replayed_count(&self) -> u64 {
        self.pins_replayed.get()
    }

    /// Run one remote operation against shard `s` under the unified
    /// recovery loop: breaker admission, revival of a poisoned connection
    /// (reconnect, escalating to failover), the operation itself, then
    /// classification of any failure —
    ///
    /// * `Busy` / `Expired`: the server shed unstarted work; retry after a
    ///   jittered backoff, no reconnect.
    /// * transport failures (`Io`, `Truncated`, `FrameTooLarge`) and
    ///   poisoned-connection protocol failures (id mismatch, frame CRC):
    ///   a breaker failure; the next attempt revives the connection.
    /// * `Remote("unknown session …")`: the server lost our session (a
    ///   replacement process, or a restart without its WAL) — fail over
    ///   and replay the journal, then retry.
    /// * anything else (a *valid* frame carrying a wrong answer, a remote
    ///   rejection of the operation itself): a bug, not weather — surface
    ///   it immediately rather than retrying into double-application.
    ///
    /// Attempts and pacing come from [`ClientConfig::retry_policy`], with a
    /// floor of two attempts so the historical reconnect-and-retransmit-once
    /// `Step` semantics hold under the zero-retry default config.
    fn with_recovery<R>(
        &self,
        s: usize,
        mut op: impl FnMut(&mut ShardClient) -> RpcResult<R>,
    ) -> RpcResult<R> {
        let policy = self.cfg.retry_policy();
        let attempts = policy.attempts.max(2);
        let started = Instant::now();
        let mut last: Option<RpcError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let pause = policy.backoff(attempt);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                if policy.expired(started) {
                    break;
                }
            }
            match self.breakers[s].borrow_mut().admit() {
                Admission::Allow => {}
                Admission::FastFail => {
                    cp_obs::counter!("rpc.client.breaker_fast_fails").inc();
                    last = Some(RpcError::Io(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        format!("shard {s} circuit breaker open"),
                    )));
                    continue;
                }
                Admission::Probe => {
                    cp_obs::counter!("rpc.client.breaker_probes").inc();
                    let probe = self
                        .revive(s)
                        .and_then(|()| self.clients[s].borrow_mut().ping());
                    match probe {
                        Ok(()) => self.breakers[s].borrow_mut().on_success(),
                        Err(e) => {
                            self.breakers[s].borrow_mut().on_failure();
                            last = Some(e);
                            continue;
                        }
                    }
                }
            }
            if let Err(e) = self.revive(s) {
                self.breakers[s].borrow_mut().on_failure();
                last = Some(e);
                continue;
            }
            let result = op(&mut self.clients[s].borrow_mut());
            match result {
                Ok(r) => {
                    self.breakers[s].borrow_mut().on_success();
                    return Ok(r);
                }
                Err(e) => {
                    let poisoned = self.clients[s].borrow().is_poisoned();
                    match &e {
                        RpcError::Busy(_) => {
                            cp_obs::counter!("rpc.client.busy_retries").inc();
                            last = Some(e);
                        }
                        RpcError::Expired(_) => {
                            cp_obs::counter!("rpc.client.expired_retries").inc();
                            last = Some(e);
                        }
                        RpcError::Io(_)
                        | RpcError::Truncated { .. }
                        | RpcError::FrameTooLarge { .. } => {
                            self.breakers[s].borrow_mut().on_failure();
                            last = Some(e);
                        }
                        RpcError::Protocol(_)
                        | RpcError::Malformed(_)
                        | RpcError::BadTag { .. }
                            if poisoned =>
                        {
                            // id-pairing or frame-CRC poison: recoverable
                            // weather. The same variants on an unpoisoned
                            // client decoded from a *valid* frame — a bug.
                            self.breakers[s].borrow_mut().on_failure();
                            last = Some(e);
                        }
                        RpcError::Remote(msg) if msg.starts_with("unknown session") => {
                            // the server is alive but lost our session:
                            // not a transport fault (no breaker penalty),
                            // but only a journal replay can cure it
                            if let Err(fe) = self.failover(s) {
                                last = Some(fe);
                            } else {
                                last = Some(e);
                            }
                        }
                        _ => return Err(e),
                    }
                }
            }
        }
        Err(last.unwrap_or_else(|| RpcError::Protocol(format!("shard {s} retry budget exhausted"))))
    }

    /// Make shard `s`'s client callable again if a transport failure
    /// poisoned it: reconnect to the same server, escalating to
    /// [`RpcCoordinator::failover`] when the re-dial itself fails.
    fn revive(&self, s: usize) -> RpcResult<()> {
        if !self.clients[s].borrow().is_poisoned() {
            return Ok(());
        }
        let reconnected = self.clients[s].borrow_mut().reconnect();
        match reconnected {
            Ok(()) => Ok(()),
            Err(_) => self.failover(s),
        }
    }

    /// Rebuild shard `s`'s session from the journal on whatever server will
    /// take it: re-dial the remembered address first (the dead-process /
    /// fresh-data-dir case — the listener may be back under a new process),
    /// then each [`ClientConfig::fallback_addrs`] entry in rotation.
    /// A successful re-dial best-effort-`Close`s the stale session id (a
    /// server that *did* keep it would otherwise leak a session slot),
    /// replays `Open` + pins, and re-publishes the global status.
    fn failover(&self, s: usize) -> RpcResult<()> {
        cp_obs::counter!("rpc.client.failovers").inc();
        self.failovers.set(self.failovers.get() + 1);
        let stale = self.clients[s].borrow().session();
        let home = self.clients[s].borrow().peer_addr();
        let n_fallbacks = self.cfg.fallback_addrs.len();
        let mut last: Option<RpcError> = None;
        for candidate in 0..=n_fallbacks {
            let target = if candidate == 0 {
                match &home {
                    Some(addr) => addr.clone(),
                    None => continue,
                }
            } else {
                let cursor = self.fallback_cursor.get();
                self.fallback_cursor.set(cursor.wrapping_add(1));
                self.cfg.fallback_addrs[cursor % n_fallbacks].clone()
            };
            let redialed = self.clients[s].borrow_mut().redial(target.as_str());
            if let Err(e) = redialed {
                last = Some(e);
                continue;
            }
            if stale != 0 {
                // ignore the outcome: a replacement server never held the
                // session, the original dedups the close with the replay
                let _ = self.clients[s]
                    .borrow_mut()
                    .expect_ok(&Request::Close { session: stale });
            }
            let replayed = self.journals[s]
                .borrow()
                .replay(&mut self.clients[s].borrow_mut());
            match replayed {
                Ok(n) => {
                    self.pins_replayed.set(self.pins_replayed.get() + n as u64);
                    self.clients[s].borrow_mut().sync_status(self.cp.clone())?;
                    return Ok(());
                }
                Err(e) => {
                    last = Some(e);
                    continue;
                }
            }
        }
        Err(last
            .unwrap_or_else(|| RpcError::Protocol(format!("shard {s} has no failover candidate"))))
    }

    /// Reject a decoded value whose `(K, |Y|)` shape does not match what
    /// was requested: the merge layers `assert!` on shape mismatches, and a
    /// remote peer's data must surface as a typed error, never a panic.
    fn check_shape(&self, what: &str, k: usize, n_labels: usize) -> RpcResult<()> {
        let expect_labels = self.problem.dataset.n_labels();
        if k != self.k || n_labels != expect_labels {
            return Err(RpcError::Protocol(format!(
                "{what} shape mismatch: got k={k} |Y|={n_labels}, expected k={} |Y|={expect_labels}",
                self.k
            )));
        }
        Ok(())
    }

    fn check_stream_shape<S: WireSemiring>(
        &self,
        stream: ShardStream<S>,
    ) -> RpcResult<ShardStream<S>> {
        self.check_shape("stream", stream.k(), stream.n_labels())?;
        Ok(stream)
    }

    /// Fetch one batched stream per shard for validation point `v` under
    /// the servers' current pin masks (through the recovery loop: a shard
    /// that drops its connection mid-fetch reconnects or fails over and the
    /// scan re-runs — scans are read-only, so re-running is always safe).
    fn fetch_streams<S: WireSemiring>(&self, v: usize) -> RpcResult<Vec<ShardStream<S>>> {
        (0..self.clients.len())
            .map(|s| {
                let stream = self.with_recovery(s, |c| c.scan::<S>(v, self.k, None))?;
                self.check_stream_shape(stream)
            })
            .collect()
    }

    /// Wrap a freshly fetched base stream for the cache, spilling it to an
    /// on-disk run when the out-of-core policy says so. A replaced or
    /// dropped entry deletes its run file ([`SpilledRun`]).
    fn cache_stream(
        &self,
        v: usize,
        s: usize,
        stream: ShardStream<f64>,
    ) -> RpcResult<CachedStream> {
        match &self.spill {
            Some(sp) if stream.events.len() >= sp.threshold => {
                let path = sp.next_path(&format!("base-v{v}-s{s}"));
                let run = spill_stream(&path, &stream)?;
                Ok(CachedStream::Spilled(SpilledRun(run)))
            }
            _ => Ok(CachedStream::Ram(stream)),
        }
    }

    /// Run `f` over the base streams (one per shard, under the servers'
    /// current masks) for validation point `v`, read through the
    /// epoch-keyed cache: only shards whose `mask_epochs` entry moved since
    /// capture are refetched. Selection's base entropies and merged
    /// hypothetical scans both come through here, so a shard untouched by
    /// recent cleaning ships its base stream once across many steps. Under
    /// the spill policy large cached streams live on disk as runs;
    /// [`CachedStream::source`] hands `f` a uniform merged-scan source
    /// either way.
    fn with_base_streams<R>(
        &self,
        v: usize,
        f: impl FnOnce(&[CachedStream]) -> RpcResult<R>,
    ) -> RpcResult<R> {
        {
            let mut cache = self.base_streams.borrow_mut();
            match &mut cache[v] {
                Some((epochs, streams)) => {
                    for s in 0..self.clients.len() {
                        if epochs[s] != self.mask_epochs[s] {
                            let fresh = self.check_stream_shape(
                                self.with_recovery(s, |c| c.scan::<f64>(v, self.k, None))?,
                            )?;
                            streams[s] = self.cache_stream(v, s, fresh)?;
                            epochs[s] = self.mask_epochs[s];
                        }
                    }
                }
                entry @ None => {
                    let fetched = self.fetch_streams::<f64>(v)?;
                    let mut streams = Vec::with_capacity(fetched.len());
                    for (s, st) in fetched.into_iter().enumerate() {
                        streams.push(self.cache_stream(v, s, st)?);
                    }
                    *entry = Some((self.mask_epochs.clone(), streams));
                }
            }
        }
        let cache = self.base_streams.borrow();
        let (_, streams) = cache[v].as_ref().expect("filled above");
        f(streams)
    }

    fn check_summary_shape(&self, summary: ExtremeSummary) -> RpcResult<ExtremeSummary> {
        self.check_shape("summary", summary.k(), summary.n_labels())?;
        Ok(summary)
    }

    /// The certainly-predicted label of validation point `v` (if any) under
    /// the current pins — the same dispatch as the in-process engines:
    /// binary label spaces ship one `O(|Y|·K)` [`ExtremeSummary`] per shard
    /// and fold them by rank (no boundary-event stream crosses the wire);
    /// everything else merges fresh `Possibility` streams.
    pub fn certain_label_at(&self, v: usize) -> RpcResult<Option<Label>> {
        if let Some(sp) = &self.spill {
            return self.certain_label_spilled(v, sp);
        }
        if self.problem.dataset.n_labels() == 2 {
            let summaries: Vec<ExtremeSummary> = (0..self.clients.len())
                .map(|s| {
                    let summary = self.with_recovery(s, |c| c.extreme_summary(v, self.k, None))?;
                    self.check_summary_shape(summary)
                })
                .collect::<RpcResult<_>>()?;
            Ok(certain_label_from_summaries(&summaries))
        } else {
            let streams = self.fetch_streams::<Possibility>(v)?;
            Ok(certain_label_from_streams(&streams))
        }
    }

    /// [`RpcCoordinator::certain_label_at`] under the out-of-core policy:
    /// fetched `Possibility` streams at or above the spill threshold go to
    /// disk as runs (scratch files, deleted before returning), and the
    /// check runs over the runs' filters + lazy cursors —
    /// [`certain_label_over_runs`] when everything spilled (the binary
    /// footer pre-check can then answer with zero block reads), a mixed
    /// RAM/disk merge otherwise. Answers are bit-identical to the in-RAM
    /// dispatch.
    fn certain_label_spilled(&self, v: usize, sp: &SpillState) -> RpcResult<Option<Label>> {
        // scratch runs are deleted on every exit path, including errors
        struct Scratch(Vec<PathBuf>);
        impl Drop for Scratch {
            fn drop(&mut self) {
                for path in &self.0 {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        let streams = self.fetch_streams::<Possibility>(v)?;
        let n_labels = self.problem.dataset.n_labels();
        let mut scratch = Scratch(Vec::new());
        let mut runs: Vec<Option<Run>> = Vec::with_capacity(streams.len());
        for (s, st) in streams.iter().enumerate() {
            runs.push(if st.events.len() >= sp.threshold {
                let path = sp.next_path(&format!("status-v{v}-s{s}"));
                scratch.0.push(path.clone());
                Some(spill_stream(&path, st)?)
            } else {
                None
            });
        }
        if runs.iter().all(|r| r.is_some()) {
            let runs: Vec<Run> = runs.into_iter().map(|r| r.expect("all spilled")).collect();
            return certain_label_over_runs(&runs, n_labels, self.k);
        }
        let mut sources = Vec::with_capacity(streams.len());
        for (st, run) in streams.iter().zip(&runs) {
            sources.push(match run {
                Some(run) => SpillSource::Disk(LazyRunCursor::new(run)?),
                None => SpillSource::Ram(st.cursor()),
            });
        }
        let label = certain_label_from_sources(&mut sources, n_labels, self.k);
        let skipped = sources
            .iter()
            .filter(|src| match src {
                SpillSource::Disk(c) => c.run().meta().n_events > 0 && !c.block_decoded(),
                SpillSource::Ram(_) => false,
            })
            .count() as u64;
        cp_obs::counter!("store.runs.skipped_by_filter").add(skipped);
        Ok(label)
    }

    /// Exact Q2 counts for validation point `v` under the current pins, in
    /// any wire semiring and with the same algorithm-selector fallbacks as
    /// the in-process engine — the handle the every-semiring equivalence
    /// tests drive.
    pub fn q2_at<S: WireSemiring>(&self, v: usize, algo: Q2Algorithm) -> RpcResult<Q2Result<S>> {
        let streams = self.fetch_streams::<S>(v)?;
        Ok(q2_from_streams_with_algorithm(&streams, algo))
    }

    /// [`RpcCoordinator::q2_at`] under an explicit *global* pin mask
    /// (restricted per shard and shipped with each scan request) instead of
    /// the servers' current masks.
    pub fn q2_with_pins<S: WireSemiring>(
        &self,
        v: usize,
        global_pins: &Pins,
        algo: Q2Algorithm,
    ) -> RpcResult<Q2Result<S>> {
        let streams: Vec<ShardStream<S>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, sh)| {
                let local = sh.local_pins(global_pins);
                let stream = self.with_recovery(s, |c| c.scan::<S>(v, self.k, Some(&local)))?;
                self.check_stream_shape(stream)
            })
            .collect::<RpcResult<_>>()?;
        Ok(q2_from_streams_with_algorithm(&streams, algo))
    }

    /// Re-evaluate the not-yet-certain validation points (certainty is
    /// monotone under cleaning, exactly as in the in-process sessions), then
    /// publish the refreshed global status to every server.
    fn try_refresh_status(&mut self) -> RpcResult<()> {
        let uncertain: Vec<usize> = (0..self.cp.len()).filter(|&v| !self.cp[v]).collect();
        if uncertain.is_empty() {
            return Ok(());
        }
        for v in uncertain {
            self.cp[v] = self.certain_label_at(v)?.is_some();
        }
        for s in 0..self.clients.len() {
            let bits = self.cp.clone();
            self.with_recovery(s, |c| c.sync_status(bits.clone()))?;
        }
        Ok(())
    }

    /// Clean one externally chosen global row: route the pin to the owning
    /// server first, then mirror it in the coordinator's state and mask and
    /// refresh the global CP status.
    ///
    /// Failure semantics: a transport failure during the `Step` round trip
    /// is ambiguous — the server may have applied the pin and lost the ack
    /// — so the recovery loop reconnects (or fails over and replays the
    /// journal) and retransmits the idempotent `Step` (it carries the
    /// cleaned-count it expects); a server that had already applied it
    /// acknowledges without double-pinning. Only if the whole retry budget
    /// fails does the error surface, with nothing local mutated. On
    /// success the pin is journaled *before* the local mutations, so a
    /// failover during the subsequent status refresh already replays it.
    /// If that refresh errors, the pin is applied consistently on both
    /// sides and only the cached [`Self::status`] may lag; staleness is
    /// *sound* (certainty is monotone, so stale entries only under-report)
    /// and the next successful refresh catches up.
    ///
    /// # Panics
    /// Panics if the row is clean or already cleaned (the same misuse
    /// contract as every other engine's `clean`).
    pub fn clean(&mut self, row: usize) -> RpcResult<()> {
        let _span = cp_obs::span!("rpc.coordinator.clean_us");
        // validate the misuse preconditions up front so the server is never
        // asked to pin a row the local mutation below would then reject
        assert!(!self.state.is_cleaned(row), "row {row} already cleaned");
        let truth =
            self.problem.truth_choice[row].unwrap_or_else(|| panic!("row {row} is not dirty"));
        let s = self.owner[row];
        let local = self.shards[s].local_row(row).expect("owner map is exact");
        let (local_row, expect) = (local as u32, self.mask_epochs[s] as u32);
        self.with_recovery(s, |c| c.step(local_row, expect))?;
        self.journals[s].borrow_mut().record_pin(local_row);
        self.state.clean_row(&self.problem, row);
        self.masks[s].pin(local, truth);
        self.mask_epochs[s] += 1;
        self.try_refresh_status()
    }

    /// The greedy CPClean selection over the given candidate rows, running
    /// the shared incremental loop ([`cp_clean::select_next_incremental`]):
    /// cached scores are reused across steps, entropy lower bounds prune
    /// rows that provably cannot beat the incumbent, the hypothetical scans
    /// that remain are pipelined per connection
    /// ([`ShardClient::scan_many`]), and base streams are cached per
    /// validation point, refetched only from shards whose mask moved.
    /// Selects the **identical** row
    /// [`RpcCoordinator::try_select_next_serialized`] would.
    pub fn try_select_next(&self, remaining: &[usize]) -> RpcResult<usize> {
        debug_assert!(!remaining.is_empty());
        let mut sel = self.sel.borrow_mut();
        let mut backend = RpcBackend { coord: self };
        select_next_incremental(
            &self.problem,
            self.state.pins(),
            &self.cp,
            remaining,
            &mut sel,
            &mut backend,
        )
    }

    /// The from-scratch serialized selection — the same structure as
    /// [`cp_shard::ShardedSession::select_next_naive`]: per uncertain
    /// validation point, every shard's base stream is fetched once and
    /// replayed for every candidate pin; only the owning shard computes a
    /// per-candidate hypothetical stream, one blocking round trip at a
    /// time. Scoring is [`pick_min_expected_entropy`] — the same code every
    /// engine's reference scorer uses. Kept as the equivalence baseline for
    /// [`RpcCoordinator::try_select_next`] and for the selection benchmark.
    pub fn try_select_next_serialized(&self, remaining: &[usize]) -> RpcResult<usize> {
        debug_assert!(!remaining.is_empty());
        let uncertain: Vec<usize> = (0..self.cp.len()).filter(|&v| !self.cp[v]).collect();
        if uncertain.is_empty() {
            return Ok(remaining[0]);
        }
        let n_labels = self.problem.dataset.n_labels();
        let mut per_val: Vec<Vec<Vec<f64>>> = Vec::with_capacity(uncertain.len());
        for &v in &uncertain {
            let base: Vec<ShardStream<f64>> = self.fetch_streams(v)?;
            let mut rows = Vec::with_capacity(remaining.len());
            for &row in remaining {
                let s = self.owner[row];
                let local = self.shards[s].local_row(row).expect("owner map is exact");
                let mut cands = Vec::with_capacity(self.problem.dataset.set_size(row));
                for j in 0..self.problem.dataset.set_size(row) {
                    let mut pinned = self.masks[s].clone();
                    pinned.pin(local, j);
                    let hyp: ShardStream<f64> = self.check_stream_shape(
                        self.with_recovery(s, |c| c.scan(v, self.k, Some(&pinned)))?,
                    )?;
                    let mut cursors: Vec<StreamCursor<'_, f64>> = base
                        .iter()
                        .enumerate()
                        .map(|(u, st)| if u == s { hyp.cursor() } else { st.cursor() })
                        .collect();
                    let probs =
                        merged_scan_sources(&mut cursors, n_labels, self.k, None, |_| false)
                            .probabilities();
                    cands.push(entropy_bits(&probs));
                }
                rows.push(cands);
            }
            per_val.push(rows);
        }
        Ok(pick_min_expected_entropy(
            &self.problem,
            remaining,
            &per_val,
        ))
    }

    /// One greedy CPClean iteration — [`CleaningEngine::step`], same
    /// contract as the in-process sessions.
    pub fn step(&mut self) -> Option<usize> {
        CleaningEngine::step(self)
    }

    /// Greedy run with curve recording —
    /// [`CleaningEngine::run_to_convergence`]: the *same* run loop the
    /// single-process and sharded sessions drive.
    pub fn run_to_convergence(&mut self, test_x: &[Vec<f64>], test_y: &[usize]) -> CleaningRun {
        CleaningEngine::run_to_convergence(self, test_x, test_y)
    }

    /// Fixed-order run with curve recording — [`CleaningEngine::run_order`]
    /// (global row ids).
    pub fn run_order(
        &mut self,
        order: &[usize],
        test_x: &[Vec<f64>],
        test_y: &[usize],
    ) -> CleaningRun {
        CleaningEngine::run_order(self, order, test_x, test_y)
    }

    /// End the run: free every server-side session, then end each
    /// connection, consuming the coordinator. Closing matters on a
    /// multi-tenant server — a session left open holds a slot against the
    /// admission cap until the server process exits.
    pub fn shutdown(self) -> RpcResult<()> {
        for client in &self.clients {
            let mut client = client.borrow_mut();
            client.close()?;
            client.expect_ok(&Request::Shutdown)?;
        }
        Ok(())
    }
}

/// The engine surface takes infallible methods; a transport failure mid-run
/// is unrecoverable for the run, so the `CleaningEngine` impl panics with
/// the underlying [`RpcError`]. Use [`RpcCoordinator::try_select_next`] /
/// [`RpcCoordinator::clean`] directly for fallible control.
impl CleaningEngine for RpcCoordinator {
    fn problem(&self) -> &CleaningProblem {
        &self.problem
    }

    fn run_options(&self) -> &RunOptions {
        &self.opts
    }

    fn cleaning_state(&self) -> &CleaningState {
        &self.state
    }

    fn n_certain(&self) -> usize {
        RpcCoordinator::n_certain(self)
    }

    fn n_val(&self) -> usize {
        self.cp.len()
    }

    fn clean(&mut self, row: usize) {
        RpcCoordinator::clean(self, row).expect("shard-server RPC failed during clean");
    }

    fn select_next(&self, remaining: &[usize]) -> usize {
        self.try_select_next(remaining)
            .expect("shard-server RPC failed during selection")
    }
}

impl Drop for RpcCoordinator {
    fn drop(&mut self) {
        // spilled cache entries delete their run files as they drop; the
        // coordinator-owned spill directory is then empty and removable
        self.base_streams.borrow_mut().clear();
        if let Some(sp) = &self.spill {
            if sp.owned {
                let _ = std::fs::remove_dir_all(&sp.dir);
            }
        }
    }
}

/// [`SelectionBackend`] over the shard-server connections: entropies come
/// from exactly the merged-stream arithmetic the serialized scorer runs,
/// with base streams read through the coordinator's epoch-keyed cache and
/// the owning shard's hypothetical scans pipelined in one batch.
struct RpcBackend<'a> {
    coord: &'a RpcCoordinator,
}

impl SelectionBackend for RpcBackend<'_> {
    type Error = RpcError;

    fn base_entropy(&mut self, v: usize) -> RpcResult<f64> {
        let c = self.coord;
        let n_labels = c.problem.dataset.n_labels();
        c.with_base_streams(v, |base| {
            let mut sources = base
                .iter()
                .map(|st| st.source())
                .collect::<RpcResult<Vec<_>>>()?;
            Ok(entropy_bits(
                &merged_scan_sources(&mut sources, n_labels, c.k, None, |_| false).probabilities(),
            ))
        })
    }

    fn hypothetical_entropies(&mut self, v: usize, row: usize) -> RpcResult<Vec<f64>> {
        let c = self.coord;
        let n_labels = c.problem.dataset.n_labels();
        let s = c.owner[row];
        let local = c.shards[s].local_row(row).expect("owner map is exact");
        let scans: Vec<(usize, Option<Pins>)> = (0..c.problem.dataset.set_size(row))
            .map(|j| {
                let mut pinned = c.masks[s].clone();
                pinned.pin(local, j);
                (v, Some(pinned))
            })
            .collect();
        // the scan batch is cloned per attempt: a failed window re-runs in
        // full on the revived (or replacement) connection
        let hyps = c.with_recovery(s, |client| client.scan_many::<f64>(c.k, scans.clone()))?;
        let hyps: Vec<ShardStream<f64>> = hyps
            .into_iter()
            .map(|h| c.check_stream_shape(h))
            .collect::<RpcResult<_>>()?;
        c.with_base_streams(v, |base| {
            hyps.iter()
                .map(|hyp| {
                    let mut sources = base
                        .iter()
                        .enumerate()
                        .map(|(u, st)| {
                            if u == s {
                                // the owner's hypothetical stream is always
                                // fresh off the wire, never spilled
                                Ok(SpillSource::Ram(hyp.cursor()))
                            } else {
                                st.source()
                            }
                        })
                        .collect::<RpcResult<Vec<_>>>()?;
                    Ok(entropy_bits(
                        &merged_scan_sources(&mut sources, n_labels, c.k, None, |_| false)
                            .probabilities(),
                    ))
                })
                .collect()
        })
    }
}

fn slice_choices(choices: &[Option<usize>], shard: &DatasetShard) -> Vec<Option<u32>> {
    choices[shard.rows()]
        .iter()
        .map(|c| c.map(|j| j as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    /// A deliberately dropped listener: the address was just live, but by
    /// connect time nothing accepts there. The bounded retry policy must
    /// fail with a typed transport error after exhausting its attempts —
    /// not hang, not panic.
    #[test]
    fn connecting_to_a_dropped_listener_exhausts_retries_with_a_typed_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        drop(listener);

        let cfg = ClientConfig {
            connect_timeout: Some(Duration::from_millis(250)),
            connect_retries: 2,
            retry_backoff: Duration::from_millis(5),
            ..ClientConfig::default()
        };
        let started = Instant::now();
        let err = ShardClient::connect_with(&addr, &cfg).expect_err("nothing listens there");
        assert!(matches!(err, RpcError::Io(_)), "got {err:?}");
        // all three attempts ran: two backoff pauses elapsed — nominally
        // 5ms + 10ms, at least half each under the [0.5, 1.0] jitter
        assert!(started.elapsed() >= Duration::from_millis(7));
    }

    /// A retry window long enough for the server to come up turns the same
    /// failure into a success: attempt one is refused, then the listener
    /// appears on the same port and a later attempt lands.
    #[test]
    fn connect_retries_bridge_a_late_starting_server() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        drop(listener);
        let spawner = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            // another process can legitimately be handed the just-freed
            // ephemeral port; retry briefly, and report (rather than
            // panic) if it stays taken — that's an environment race, not
            // a retry-logic failure
            for _ in 0..200 {
                if let Ok(l) = TcpListener::bind(addr) {
                    return Some(l);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            None
        });
        let cfg = ClientConfig {
            connect_retries: 150,
            retry_backoff: Duration::from_millis(10),
            // pin the cap so 150 attempts stay a ~1.5s worst case, not an
            // exponentially-backed-off eternity
            backoff_cap: Duration::from_millis(10),
            ..ClientConfig::default()
        };
        let client = ShardClient::connect_with(addr.to_string(), &cfg);
        let rebound = spawner.join().expect("listener thread");
        if rebound.is_none() {
            eprintln!("skipping assertion: freed ephemeral port was re-taken by the environment");
            return;
        }
        client.expect("a retry after the rebind must succeed");
    }

    /// A connected-but-silent server must not hang a coordinator: with a
    /// read timeout set, the blocked response read surfaces as `Io`.
    #[test]
    fn read_timeout_turns_a_silent_server_into_a_typed_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let hold = std::thread::spawn(move || {
            // accept, then never answer; keep the socket open until the
            // client has timed out
            let (stream, _) = listener.accept().expect("accept");
            std::thread::sleep(Duration::from_millis(400));
            drop(stream);
        });

        let cfg = ClientConfig {
            read_timeout: Some(Duration::from_millis(50)),
            ..ClientConfig::default()
        };
        let mut client = ShardClient::connect_with(&addr, &cfg).expect("connect");
        let err = client
            .call(&Request::Status { session: 0 })
            .expect_err("server is silent");
        assert!(matches!(err, RpcError::Io(_)), "got {err:?}");
        // the timeout poisons the connection: a late response could still
        // arrive on this stream and be mistaken for the next call's answer,
        // so reuse must fail typed instead of returning wrong data
        assert!(client.is_poisoned());
        let err = client
            .call(&Request::Status { session: 0 })
            .expect_err("poisoned");
        assert!(
            matches!(&err, RpcError::Protocol(msg) if msg.contains("poisoned")),
            "got {err:?}"
        );
        hold.join().expect("server thread");
    }
}
