//! The coordinator client: drives N shard servers through the existing
//! merged-scan logic and exposes the same
//! `step()` / `status()` / `run_to_convergence()` / `run_order()` surface as
//! the in-process [`cp_shard::ShardedSession`].
//!
//! An [`RpcCoordinator`] owns the global problem, the cleaning state and the
//! CP status vector; shard servers own everything partition-local (rows,
//! similarity indexes, pin masks). Per status refresh the coordinator asks
//! every server for one batched `Possibility` stream and merges them with
//! [`cp_shard::certain_label_from_streams`]; per greedy selection it fetches
//! each shard's base probability stream once and, for every candidate pin,
//! one hypothetical stream from the *owning* shard only — every other
//! shard's stream is replayed as-is, mirroring the in-process engine's
//! "only the owner's mask changes" structure. Because the streams are
//! produced by the same `ShardScan` code and merged by the same
//! [`cp_shard::merged_scan_sources`] loop in the same shard order, the
//! coordinator's status vectors, greedy choices and cleaned orders are
//! **identical** to `ShardedSession`'s — property-tested over real loopback
//! sockets in `tests/rpc_equivalence.rs`.

use crate::codec::{decode_stream, read_frame, write_frame, WireSemiring};
use crate::error::{RpcError, RpcResult};
use crate::proto::{decode_response, encode_request, OpenShard, Request, Response, ShardStatus};
use cp_clean::metrics::CleaningRun;
use cp_clean::{
    pick_min_expected_entropy, CleaningEngine, CleaningProblem, CleaningState, RunOptions,
};
use cp_core::{DatasetShard, Pins, Q2Algorithm, Q2Result};
use cp_knn::Label;
use cp_numeric::stats::entropy_bits;
use cp_numeric::Possibility;
use cp_shard::scan::{certain_label_from_streams, q2_from_streams_with_algorithm};
use cp_shard::{merged_scan_sources, ShardStream, StreamCursor};
use std::cell::RefCell;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// A connection to one shard server.
#[derive(Debug)]
pub struct ShardClient {
    stream: TcpStream,
}

impl ShardClient {
    /// Connect to a server. `TCP_NODELAY` is set: the protocol is strict
    /// request/response with small frames, where Nagle batching only adds
    /// latency.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> RpcResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ShardClient { stream })
    }

    /// One request/response round trip.
    pub fn call(&mut self, req: &Request) -> RpcResult<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        decode_response(&read_frame(&mut self.stream)?)
    }

    fn expect_ok(&mut self, req: &Request) -> RpcResult<()> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            Response::Error(msg) => Err(RpcError::Remote(msg)),
            other => Err(RpcError::Protocol(format!("expected Ok, got {other:?}"))),
        }
    }

    /// Request one batched scan stream in semiring `S`.
    pub fn scan<S: WireSemiring>(
        &mut self,
        val: usize,
        k: usize,
        pins: Option<&Pins>,
    ) -> RpcResult<ShardStream<S>> {
        let req = Request::Scan {
            val: val as u32,
            k: k as u32,
            semiring: S::TAG,
            pins: pins.cloned(),
        };
        match self.call(&req)? {
            Response::Stream(bytes) => decode_stream::<S>(&bytes),
            Response::Error(msg) => Err(RpcError::Remote(msg)),
            other => Err(RpcError::Protocol(format!(
                "expected Stream, got {other:?}"
            ))),
        }
    }

    /// Ask for the server's local view.
    pub fn status(&mut self) -> RpcResult<ShardStatus> {
        match self.call(&Request::Status)? {
            Response::Status(status) => Ok(status),
            Response::Error(msg) => Err(RpcError::Remote(msg)),
            other => Err(RpcError::Protocol(format!(
                "expected Status, got {other:?}"
            ))),
        }
    }
}

/// A cleaning run distributed over shard servers: the multi-process twin of
/// [`cp_shard::ShardedSession`], answering through the same merged-scan
/// algebra over decoded streams instead of live scans.
#[derive(Debug)]
pub struct RpcCoordinator {
    problem: Arc<CleaningProblem>,
    opts: RunOptions,
    shards: Vec<DatasetShard>,
    /// `owner[row]` = index of the shard (and server) owning a global row.
    owner: Vec<usize>,
    /// One connection per shard; `RefCell` because the engine surface takes
    /// `&self` for selection while each call is a socket round trip.
    clients: Vec<RefCell<ShardClient>>,
    /// Coordinator-side mirror of each server's local pin mask.
    masks: Vec<Pins>,
    state: CleaningState,
    cp: Vec<bool>,
    /// Global effective K, computed once from the full dataset.
    k: usize,
}

impl RpcCoordinator {
    /// Connect to shard servers and distribute the problem: partition the
    /// dataset over (at most) `addrs.len()` shards — clamped to the row
    /// count exactly like [`cp_core::IncompleteDataset::partition`] — ship
    /// each shard to its server via [`Request::Open`], and evaluate the
    /// initial global CP status by merged stream scans. Servers beyond the
    /// clamped arity are left untouched.
    ///
    /// # Panics
    /// Panics if `addrs` is empty or the problem does not validate.
    pub fn connect<A: ToSocketAddrs>(
        problem: &CleaningProblem,
        addrs: &[A],
        opts: &RunOptions,
    ) -> RpcResult<Self> {
        assert!(!addrs.is_empty(), "need at least one shard server");
        problem.validate();
        let problem = Arc::new(problem.clone());
        let shards = problem.dataset.partition(addrs.len());
        let mut owner = vec![0usize; problem.dataset.len()];
        for (s, sh) in shards.iter().enumerate() {
            for row in sh.rows() {
                owner[row] = s;
            }
        }
        let k = problem.config.k_eff(problem.dataset.len());
        let mut clients = Vec::with_capacity(shards.len());
        for (sh, addr) in shards.iter().zip(addrs) {
            let mut client = ShardClient::connect(addr)?;
            let open = OpenShard {
                start: sh.start(),
                n_labels: sh.dataset().n_labels(),
                k: problem.config.k,
                kernel: problem.config.kernel,
                n_threads: opts.n_threads.max(1),
                examples: (0..sh.len())
                    .map(|i| {
                        let ex = sh.dataset().example(i);
                        (ex.label, ex.candidates.clone())
                    })
                    .collect(),
                val_x: problem.val_x.as_ref().clone(),
                truth_choice: slice_choices(&problem.truth_choice, sh),
                default_choice: slice_choices(&problem.default_choice, sh),
            };
            match client.call(&Request::Open(Box::new(open)))? {
                Response::Opened { n_rows } if n_rows == sh.len() => {}
                Response::Opened { n_rows } => {
                    return Err(RpcError::Protocol(format!(
                        "server opened {n_rows} rows, expected {}",
                        sh.len()
                    )))
                }
                Response::Error(msg) => return Err(RpcError::Remote(msg)),
                other => {
                    return Err(RpcError::Protocol(format!(
                        "expected Opened, got {other:?}"
                    )))
                }
            }
            clients.push(RefCell::new(client));
        }
        let masks = shards.iter().map(|sh| Pins::none(sh.len())).collect();
        let state = CleaningState::new(&problem);
        let cp = vec![false; problem.val_x.len()];
        let mut coordinator = RpcCoordinator {
            problem,
            opts: opts.clone(),
            shards,
            owner,
            clients,
            masks,
            state,
            cp,
            k,
        };
        coordinator.try_refresh_status()?;
        Ok(coordinator)
    }

    /// The (global) problem this coordinator cleans.
    pub fn problem(&self) -> &CleaningProblem {
        &self.problem
    }

    /// Number of shards actually served (the clamped partition arity).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The dataset partition.
    pub fn shards(&self) -> &[DatasetShard] {
        &self.shards
    }

    /// The shard owning a global row.
    pub fn owner_of(&self, row: usize) -> usize {
        self.owner[row]
    }

    /// The global cleaning progress so far.
    pub fn state(&self) -> &CleaningState {
        &self.state
    }

    /// Per-validation-point global CP status under the current pins,
    /// maintained incrementally by merged stream scans.
    pub fn status(&self) -> &[bool] {
        &self.cp
    }

    /// Number of validation points currently certainly predicted.
    pub fn n_certain(&self) -> usize {
        self.cp.iter().filter(|&&c| c).count()
    }

    /// `true` iff every validation point is certainly predicted.
    pub fn converged(&self) -> bool {
        self.cp.iter().all(|&c| c)
    }

    /// Rows cleaned so far.
    pub fn n_cleaned(&self) -> usize {
        self.state.n_cleaned()
    }

    /// Dirty rows not yet cleaned (global row ids).
    pub fn remaining(&self) -> Vec<usize> {
        self.state.remaining(&self.problem)
    }

    /// Reject a decoded stream whose factor shape does not match what was
    /// requested: the merge layer `assert!`s on shape mismatches, and a
    /// remote peer's data must surface as a typed error, never a panic.
    fn check_stream_shape<S: WireSemiring>(
        &self,
        stream: ShardStream<S>,
    ) -> RpcResult<ShardStream<S>> {
        let n_labels = self.problem.dataset.n_labels();
        if stream.k() != self.k || stream.n_labels() != n_labels {
            return Err(RpcError::Protocol(format!(
                "stream shape mismatch: got k={} |Y|={}, expected k={} |Y|={n_labels}",
                stream.k(),
                stream.n_labels(),
                self.k
            )));
        }
        Ok(stream)
    }

    /// Fetch one batched stream per shard for validation point `v` under
    /// the servers' current pin masks.
    fn fetch_streams<S: WireSemiring>(&self, v: usize) -> RpcResult<Vec<ShardStream<S>>> {
        self.clients
            .iter()
            .map(|c| self.check_stream_shape(c.borrow_mut().scan::<S>(v, self.k, None)?))
            .collect()
    }

    /// The certainly-predicted label of validation point `v` (if any) under
    /// the current pins, by one merged scan over fresh per-shard streams.
    pub fn certain_label_at(&self, v: usize) -> RpcResult<Option<Label>> {
        let streams = self.fetch_streams::<Possibility>(v)?;
        Ok(certain_label_from_streams(&streams))
    }

    /// Exact Q2 counts for validation point `v` under the current pins, in
    /// any wire semiring and with the same algorithm-selector fallbacks as
    /// the in-process engine — the handle the every-semiring equivalence
    /// tests drive.
    pub fn q2_at<S: WireSemiring>(&self, v: usize, algo: Q2Algorithm) -> RpcResult<Q2Result<S>> {
        let streams = self.fetch_streams::<S>(v)?;
        Ok(q2_from_streams_with_algorithm(&streams, algo))
    }

    /// [`RpcCoordinator::q2_at`] under an explicit *global* pin mask
    /// (restricted per shard and shipped with each scan request) instead of
    /// the servers' current masks.
    pub fn q2_with_pins<S: WireSemiring>(
        &self,
        v: usize,
        global_pins: &Pins,
        algo: Q2Algorithm,
    ) -> RpcResult<Q2Result<S>> {
        let streams: Vec<ShardStream<S>> = self
            .shards
            .iter()
            .zip(&self.clients)
            .map(|(sh, client)| {
                let local = sh.local_pins(global_pins);
                self.check_stream_shape(client.borrow_mut().scan::<S>(v, self.k, Some(&local))?)
            })
            .collect::<RpcResult<_>>()?;
        Ok(q2_from_streams_with_algorithm(&streams, algo))
    }

    /// Re-evaluate the not-yet-certain validation points (certainty is
    /// monotone under cleaning, exactly as in the in-process sessions), then
    /// publish the refreshed global status to every server.
    fn try_refresh_status(&mut self) -> RpcResult<()> {
        let uncertain: Vec<usize> = (0..self.cp.len()).filter(|&v| !self.cp[v]).collect();
        if uncertain.is_empty() {
            return Ok(());
        }
        for v in uncertain {
            self.cp[v] = self.certain_label_at(v)?.is_some();
        }
        for client in &self.clients {
            client
                .borrow_mut()
                .expect_ok(&Request::SyncStatus(self.cp.clone()))?;
        }
        Ok(())
    }

    /// Clean one externally chosen global row: route the pin to the owning
    /// server first, then mirror it in the coordinator's state and mask and
    /// refresh the global CP status.
    ///
    /// Failure semantics: if the `Step` round trip errors before a success
    /// response arrives, nothing local has been mutated (a lost *ack* can
    /// still leave the server pinned — retrying then surfaces as a
    /// `Remote("row … already cleaned")` error, never silent divergence).
    /// If the subsequent status refresh errors instead, the pin is already
    /// applied consistently on both sides and only the cached [`Self::status`]
    /// may lag; staleness is *sound* (certainty is monotone, so stale
    /// entries only under-report) and the next successful refresh catches
    /// up.
    ///
    /// # Panics
    /// Panics if the row is clean or already cleaned (the same misuse
    /// contract as every other engine's `clean`).
    pub fn clean(&mut self, row: usize) -> RpcResult<()> {
        // validate the misuse preconditions up front so the server is never
        // asked to pin a row the local mutation below would then reject
        assert!(!self.state.is_cleaned(row), "row {row} already cleaned");
        let truth =
            self.problem.truth_choice[row].unwrap_or_else(|| panic!("row {row} is not dirty"));
        let s = self.owner[row];
        let local = self.shards[s].local_row(row).expect("owner map is exact");
        self.clients[s].borrow_mut().expect_ok(&Request::Step {
            local_row: local as u32,
        })?;
        self.state.clean_row(&self.problem, row);
        self.masks[s].pin(local, truth);
        self.try_refresh_status()
    }

    /// The greedy CPClean selection over the given candidate rows — the
    /// same structure as [`cp_shard::ShardedSession::select_next`]: per
    /// uncertain validation point, every shard's base stream is fetched once
    /// and replayed for every candidate pin; only the owning shard computes
    /// a per-candidate hypothetical stream. Scoring is
    /// [`pick_min_expected_entropy`] — the same code every engine scores
    /// with.
    pub fn try_select_next(&self, remaining: &[usize]) -> RpcResult<usize> {
        debug_assert!(!remaining.is_empty());
        let uncertain: Vec<usize> = (0..self.cp.len()).filter(|&v| !self.cp[v]).collect();
        if uncertain.is_empty() {
            return Ok(remaining[0]);
        }
        let n_labels = self.problem.dataset.n_labels();
        let mut per_val: Vec<Vec<Vec<f64>>> = Vec::with_capacity(uncertain.len());
        for &v in &uncertain {
            let base: Vec<ShardStream<f64>> = self.fetch_streams(v)?;
            let mut rows = Vec::with_capacity(remaining.len());
            for &row in remaining {
                let s = self.owner[row];
                let local = self.shards[s].local_row(row).expect("owner map is exact");
                let mut cands = Vec::with_capacity(self.problem.dataset.set_size(row));
                for j in 0..self.problem.dataset.set_size(row) {
                    let mut pinned = self.masks[s].clone();
                    pinned.pin(local, j);
                    let hyp: ShardStream<f64> = self.check_stream_shape(
                        self.clients[s]
                            .borrow_mut()
                            .scan(v, self.k, Some(&pinned))?,
                    )?;
                    let mut cursors: Vec<StreamCursor<'_, f64>> = base
                        .iter()
                        .enumerate()
                        .map(|(u, st)| if u == s { hyp.cursor() } else { st.cursor() })
                        .collect();
                    let probs =
                        merged_scan_sources(&mut cursors, n_labels, self.k, None, |_| false)
                            .probabilities();
                    cands.push(entropy_bits(&probs));
                }
                rows.push(cands);
            }
            per_val.push(rows);
        }
        Ok(pick_min_expected_entropy(
            &self.problem,
            remaining,
            &per_val,
        ))
    }

    /// One greedy CPClean iteration — [`CleaningEngine::step`], same
    /// contract as the in-process sessions.
    pub fn step(&mut self) -> Option<usize> {
        CleaningEngine::step(self)
    }

    /// Greedy run with curve recording —
    /// [`CleaningEngine::run_to_convergence`]: the *same* run loop the
    /// single-process and sharded sessions drive.
    pub fn run_to_convergence(&mut self, test_x: &[Vec<f64>], test_y: &[usize]) -> CleaningRun {
        CleaningEngine::run_to_convergence(self, test_x, test_y)
    }

    /// Fixed-order run with curve recording — [`CleaningEngine::run_order`]
    /// (global row ids).
    pub fn run_order(
        &mut self,
        order: &[usize],
        test_x: &[Vec<f64>],
        test_y: &[usize],
    ) -> CleaningRun {
        CleaningEngine::run_order(self, order, test_x, test_y)
    }

    /// End the session: ask every server to shut down, consuming the
    /// coordinator.
    pub fn shutdown(self) -> RpcResult<()> {
        for client in &self.clients {
            client.borrow_mut().expect_ok(&Request::Shutdown)?;
        }
        Ok(())
    }
}

/// The engine surface takes infallible methods; a transport failure mid-run
/// is unrecoverable for the run, so the `CleaningEngine` impl panics with
/// the underlying [`RpcError`]. Use [`RpcCoordinator::try_select_next`] /
/// [`RpcCoordinator::clean`] directly for fallible control.
impl CleaningEngine for RpcCoordinator {
    fn problem(&self) -> &CleaningProblem {
        &self.problem
    }

    fn run_options(&self) -> &RunOptions {
        &self.opts
    }

    fn cleaning_state(&self) -> &CleaningState {
        &self.state
    }

    fn n_certain(&self) -> usize {
        RpcCoordinator::n_certain(self)
    }

    fn n_val(&self) -> usize {
        self.cp.len()
    }

    fn clean(&mut self, row: usize) {
        RpcCoordinator::clean(self, row).expect("shard-server RPC failed during clean");
    }

    fn select_next(&self, remaining: &[usize]) -> usize {
        self.try_select_next(remaining)
            .expect("shard-server RPC failed during selection")
    }
}

fn slice_choices(choices: &[Option<usize>], shard: &DatasetShard) -> Vec<Option<u32>> {
    choices[shard.rows()]
        .iter()
        .map(|c| c.map(|j| j as u32))
        .collect()
}
