//! The shard-serving message schema: what a coordinator sends a shard
//! server and what comes back.
//!
//! One frame carries one message; the payload's first byte is the message
//! tag. The conversation is strictly request/response over a single
//! connection, but a server process is **multi-tenant**: [`Request::Open`]
//! mints a [`SessionId`] and every session-scoped request carries one, so
//! any number of independent cleaning sessions (from any number of
//! connections) multiplex over one server:
//!
//! | request                | response                                  |
//! |------------------------|-------------------------------------------|
//! | [`Request::Open`]      | [`Response::Opened`] — session minted      |
//! | [`Request::Scan`]      | [`Response::Stream`] — batched event stream |
//! | [`Request::ExtremeSummary`] | [`Response::Summary`] — rank-merged MM top-K |
//! | [`Request::Step`]      | [`Response::Ok`] — pin applied (idempotent) |
//! | [`Request::SyncStatus`]| [`Response::Ok`] — global CP bits stored   |
//! | [`Request::Status`]    | [`Response::Status`] — session's local view |
//! | [`Request::Stats`]     | [`Response::Stats`] — encoded metrics snapshot |
//! | [`Request::Close`]     | [`Response::Ok`] — session freed, connection lives |
//! | [`Request::Ping`]      | [`Response::Ok`] — liveness probe, no session |
//! | [`Request::Shutdown`]  | [`Response::Ok`] — connection ends         |
//!
//! Any request may additionally travel wrapped in [`Request::Deadline`],
//! which carries the client's remaining patience as a **relative** budget
//! (microseconds — relative so no clock synchronization is assumed). A
//! server whose connection queue held the frame longer than its budget
//! sheds it unstarted with [`Response::Expired`] — retryable, like
//! [`Response::Busy`].
//!
//! Sessions belong to the server process, not to a connection: a
//! coordinator that reconnects keeps driving the same session by its id
//! (which is what makes the idempotent-`Step` retransmission work across a
//! reconnect). [`Request::Close`] frees one session without touching the
//! connection; [`Request::Shutdown`] ends the connection without touching
//! other sessions.
//!
//! Anything the server rejects (malformed pins, unknown session, unknown
//! semiring) comes back as [`Response::Error`] with a message; an
//! admission-control refusal (session or connection caps) is
//! [`Response::Busy`] — retryable, unlike an error; transport and codec
//! failures are [`crate::RpcError`]s on either side.

#[cfg(test)]
use crate::codec::put_points;
use crate::codec::{
    get_kernel, get_pins, get_points, get_status_bits, put_kernel, put_pins, put_status_bits,
};
use crate::error::{RpcError, RpcResult};
#[cfg(test)]
use crate::wire::put_opt_u32;
use crate::wire::{put_u32, put_u64, put_u8, put_usize, put_varint_u64, put_zigzag_i64, Reader};
use cp_core::Pins;
use cp_knn::{Kernel, Label};

/// A server-minted handle naming one cleaning session on a multi-tenant
/// shard server. Ids are unique per server process and never reused; `0` is
/// never minted, so an unopened client's default id can't alias a session.
pub type SessionId = u64;

/// Everything a shard server needs to adopt its partition: the shard's rows
/// (with labels and candidate sets), its global row offset, the classifier
/// configuration, the full validation features, and the simulated human's
/// choices restricted to the shard's rows.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenShard {
    /// First global row owned by the shard.
    pub start: usize,
    /// Number of classes `|Y|`.
    pub n_labels: usize,
    /// Classifier K (the *configured* K; effective K travels per scan).
    pub k: usize,
    /// Similarity kernel.
    pub kernel: Kernel,
    /// Worker threads the server may use for its index builds.
    pub n_threads: usize,
    /// The shard's rows: `(label, candidate set)` per local row.
    pub examples: Vec<(Label, Vec<Vec<f64>>)>,
    /// The full validation features (every shard indexes all of them).
    pub val_x: Vec<Vec<f64>>,
    /// Ground-truth candidate per local row (`None` for clean rows).
    pub truth_choice: Vec<Option<u32>>,
    /// Default-imputation candidate per local row (`None` for clean rows).
    pub default_choice: Vec<Option<u32>>,
}

/// A coordinator→server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open a new cleaning session over a shard (must precede everything
    /// below; the minted [`SessionId`] scopes every later request).
    Open(Box<OpenShard>),
    /// Compute one batched scan stream for validation point `val`.
    Scan {
        /// The session to scan.
        session: SessionId,
        /// Validation-point index into the opened `val_x`.
        val: u32,
        /// The **global** effective K for the scan's tally trees.
        k: u32,
        /// Requested [`crate::codec::WireSemiring`] tag.
        semiring: u8,
        /// Shard-local pin mask override; `None` scans under the server
        /// session's current pins (hypothetical selection pins travel as
        /// `Some`).
        pins: Option<Pins>,
    },
    /// Compute one rank-ordered extreme summary for validation point `val`
    /// — the binary-Q1 MM fast path's `O(|Y|·K)` exchange, replacing the
    /// whole boundary-event stream for status checks.
    ExtremeSummary {
        /// The session to summarize.
        session: SessionId,
        /// Validation-point index into the opened `val_x`.
        val: u32,
        /// The **global** effective K (how many top entries to keep).
        k: u32,
        /// Shard-local pin mask override; `None` summarizes under the
        /// server session's current pins.
        pins: Option<Pins>,
    },
    /// Clean one shard-local row (pin it to its ground-truth candidate).
    ///
    /// The request is **idempotent**: `expect_cleaned` carries the
    /// coordinator's view of the shard's cleaned-row count *before* this
    /// step. A server whose count already advanced past it — because it
    /// applied an earlier transmission of the same step whose reply was
    /// lost — answers [`Response::Ok`] without re-pinning, so a reconnect
    /// retry can never double-apply or silently diverge the masks.
    Step {
        /// The session to pin in.
        session: SessionId,
        /// Local row index within the shard.
        local_row: u32,
        /// The shard's cleaned-row count the coordinator expects before the
        /// pin is applied (its epoch for this step).
        expect_cleaned: u32,
    },
    /// Publish the coordinator's global CP status bits to one session.
    SyncStatus {
        /// The session to publish to.
        session: SessionId,
        /// The global CP status bits.
        bits: Vec<bool>,
    },
    /// Ask for one session's local view.
    Status {
        /// The session to report on.
        session: SessionId,
    },
    /// Ask for the server's live metrics (a `cp-obs` registry snapshot).
    /// Session-optional: `0` asks for the whole process's metrics, a real
    /// [`SessionId`] restricts the snapshot to that session's own counters
    /// (and errors if the session is unknown).
    Stats {
        /// `0` for process-wide metrics, or a session to restrict to.
        session: SessionId,
    },
    /// Free one session; the connection stays usable (other sessions —
    /// including ones opened over other connections — are untouched).
    Close {
        /// The session to free.
        session: SessionId,
    },
    /// End the connection. Sessions survive (they belong to the server
    /// process, so a reconnecting coordinator can keep driving them); use
    /// [`Request::Close`] to free them.
    Shutdown,
    /// Liveness probe: answered with [`Response::Ok`] and nothing else.
    /// Session-free and state-free — the half-open circuit breaker's cheap
    /// way to ask "is this server serving?" before committing real work.
    Ping,
    /// Deadline envelope around any other request. `budget_us` is the
    /// client's remaining patience **relative to the frame's arrival**
    /// (microseconds; `0` means "already expired" — clients clamp live
    /// deadlines to ≥ 1). A server that held the frame queued past the
    /// budget sheds it unstarted with [`Response::Expired`]. Envelopes
    /// don't nest.
    Deadline {
        /// Remaining patience in microseconds, relative to arrival.
        budget_us: u64,
        /// The enveloped request.
        inner: Box<Request>,
    },
}

/// A shard server's local view, as reported by [`Response::Status`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShardStatus {
    /// First global row owned.
    pub start: usize,
    /// Number of rows owned.
    pub n_rows: usize,
    /// Rows cleaned so far.
    pub n_cleaned: usize,
    /// The shard-local pin mask.
    pub pins: Pins,
    /// The last global CP status published via [`Request::SyncStatus`]
    /// (empty until the first sync).
    pub global_cp: Vec<bool>,
}

/// A server→coordinator message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Request applied; nothing to report.
    Ok,
    /// Session opened; carries the minted handle and echoes the row count
    /// as a handshake check.
    Opened {
        /// The server-minted session handle.
        session: SessionId,
        /// Rows owned by the opened shard.
        n_rows: usize,
    },
    /// One batched scan stream, encoded with
    /// [`crate::codec::encode_stream`] (self-tagged with its semiring).
    Stream(Vec<u8>),
    /// One rank-ordered extreme summary, encoded with
    /// [`crate::codec::encode_summary`].
    Summary(Vec<u8>),
    /// The server's local view.
    Status(ShardStatus),
    /// The server's live metrics: a `cp_obs::Snapshot` in its own wire
    /// encoding (`Snapshot::encode`/`decode`), opaque to this layer like
    /// [`Response::Stream`].
    Stats(Vec<u8>),
    /// The request was understood but rejected.
    Error(String),
    /// The server refused admission (sessions or connections at capacity).
    /// Retryable: the same request is expected to succeed once load drains —
    /// clients surface it as [`crate::RpcError::Busy`].
    Busy(String),
    /// The request's [`Request::Deadline`] budget had already passed when
    /// the server dequeued it, so the work was shed unstarted. Retryable
    /// with a fresh deadline — clients surface it as
    /// [`crate::RpcError::Expired`].
    Expired(String),
}

const REQ_OPEN: u8 = 1;
const REQ_SCAN: u8 = 2;
const REQ_STEP: u8 = 3;
const REQ_SYNC_STATUS: u8 = 4;
const REQ_STATUS: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;
const REQ_EXTREME_SUMMARY: u8 = 7;
const REQ_CLOSE: u8 = 8;
const REQ_STATS: u8 = 9;
const REQ_PING: u8 = 10;
const REQ_DEADLINE: u8 = 11;

/// `Open` payload layout versions — the byte after the `REQ_OPEN` tag.
/// `Open` is the largest single message of the protocol (it carries the
/// whole candidate grid), so like scan streams it travels delta-compressed
/// by default; the raw layout stays decodable behind its own version byte.
const OPEN_V_RAW: u8 = 1;
const OPEN_V_DELTA: u8 = 2;

const RESP_OK: u8 = 1;
const RESP_OPENED: u8 = 2;
const RESP_STREAM: u8 = 3;
const RESP_STATUS: u8 = 4;
const RESP_ERROR: u8 = 5;
const RESP_SUMMARY: u8 = 6;
const RESP_BUSY: u8 = 7;
const RESP_STATS: u8 = 8;
const RESP_EXPIRED: u8 = 9;

#[cfg(test)]
fn put_choices(out: &mut Vec<u8>, choices: &[Option<u32>]) {
    put_u32(out, choices.len() as u32);
    for &c in choices {
        put_opt_u32(out, c);
    }
}

fn get_choices(r: &mut Reader<'_>) -> RpcResult<Vec<Option<u32>>> {
    let n = r.count(1, "choices")?;
    let mut choices = Vec::with_capacity(n);
    for _ in 0..n {
        choices.push(r.opt_u32("choice")?);
    }
    Ok(choices)
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn get_string(r: &mut Reader<'_>) -> RpcResult<String> {
    let n = r.count(1, "string")?;
    let bytes = r.take(n, "string bytes")?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| RpcError::Malformed("string is not valid utf-8".into()))
}

/// Delta-encode a point list: varint counts and dims, each `f64` as the
/// zigzag-varint difference of its bit pattern from the previous value
/// *in the same feature column* (`prev[j]` runs across the whole payload).
/// A feature's values cluster tightly across rows — and a dirty cell's
/// candidates are imputations of the same quantity — so the column-wise
/// bit-pattern deltas are short varints where the raw layout spends a
/// fixed 8 bytes per value.
fn put_delta_points(out: &mut Vec<u8>, points: &[Vec<f64>], prev: &mut Vec<u64>) {
    put_varint_u64(out, points.len() as u64);
    for p in points {
        put_varint_u64(out, p.len() as u64);
        for (j, &v) in p.iter().enumerate() {
            if prev.len() <= j {
                prev.push(0);
            }
            let bits = v.to_bits();
            put_zigzag_i64(out, bits.wrapping_sub(prev[j]) as i64);
            prev[j] = bits;
        }
    }
}

/// A varint element count that must be plausible for the bytes left (each
/// element occupies at least one byte) — the varint twin of
/// [`Reader::count`], rejecting hostile counts before any allocation is
/// sized from them.
fn varint_count(r: &mut Reader<'_>, context: &'static str) -> RpcResult<usize> {
    let n = r.varint_u64(context)?;
    if n > r.remaining() as u64 {
        return Err(RpcError::Truncated { context });
    }
    Ok(n as usize)
}

fn get_delta_points(r: &mut Reader<'_>, prev: &mut Vec<u64>) -> RpcResult<Vec<Vec<f64>>> {
    let n = varint_count(r, "delta points")?;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let dim = varint_count(r, "delta point dim")?;
        let mut p = Vec::with_capacity(dim);
        for j in 0..dim {
            if prev.len() <= j {
                prev.push(0);
            }
            let bits = prev[j].wrapping_add(r.zigzag_i64("delta point value")? as u64);
            p.push(f64::from_bits(bits));
            prev[j] = bits;
        }
        points.push(p);
    }
    Ok(points)
}

/// Choices as single varints: `0` = clean row, `c + 1` = candidate `c`.
fn put_varint_choices(out: &mut Vec<u8>, choices: &[Option<u32>]) {
    put_varint_u64(out, choices.len() as u64);
    for &c in choices {
        put_varint_u64(out, c.map_or(0, |v| v as u64 + 1));
    }
}

fn get_varint_choices(r: &mut Reader<'_>) -> RpcResult<Vec<Option<u32>>> {
    let n = varint_count(r, "choices")?;
    let mut choices = Vec::with_capacity(n);
    for _ in 0..n {
        choices.push(match r.varint_u64("choice")? {
            0 => None,
            v if v - 1 <= u32::MAX as u64 => Some((v - 1) as u32),
            v => {
                return Err(RpcError::Malformed(format!(
                    "choice {v} does not fit a candidate index"
                )))
            }
        });
    }
    Ok(choices)
}

/// Encode one [`OpenShard`] payload (tag included) with an explicit
/// `n_threads` value, in the delta layout ([`OPEN_V_DELTA`]) — the one
/// encoding the coordinator sends *and* the one the server canonicalizes
/// shard-dedup keys from. `encode_request` passes the payload's own
/// `n_threads`; the server passes `0` to canonicalize, so a thread-count
/// knob — which doesn't change what shard is being opened — can't split
/// otherwise-identical shards into separate index builds.
pub(crate) fn put_open(out: &mut Vec<u8>, open: &OpenShard, n_threads: usize) {
    put_u8(out, REQ_OPEN);
    put_u8(out, OPEN_V_DELTA);
    put_varint_u64(out, open.start as u64);
    put_varint_u64(out, open.n_labels as u64);
    put_varint_u64(out, open.k as u64);
    put_kernel(out, open.kernel);
    put_varint_u64(out, n_threads as u64);
    put_varint_u64(out, open.examples.len() as u64);
    let mut prev: Vec<u64> = Vec::new();
    for (label, candidates) in &open.examples {
        put_varint_u64(out, *label as u64);
        put_delta_points(out, candidates, &mut prev);
    }
    put_delta_points(out, &open.val_x, &mut prev);
    put_varint_choices(out, &open.truth_choice);
    put_varint_choices(out, &open.default_choice);
}

/// The fixed-width v1 layout, kept encodable for the version-compatibility
/// tests and as the arithmetic ground truth for the byte-accounting
/// counters.
#[cfg(test)]
pub(crate) fn put_open_raw(out: &mut Vec<u8>, open: &OpenShard, n_threads: usize) {
    put_u8(out, REQ_OPEN);
    put_u8(out, OPEN_V_RAW);
    put_usize(out, open.start);
    put_u32(out, open.n_labels as u32);
    put_u32(out, open.k as u32);
    put_kernel(out, open.kernel);
    put_u32(out, n_threads as u32);
    put_u32(out, open.examples.len() as u32);
    for (label, candidates) in &open.examples {
        put_u32(out, *label as u32);
        put_points(out, candidates);
    }
    put_points(out, &open.val_x);
    put_choices(out, &open.truth_choice);
    put_choices(out, &open.default_choice);
}

/// Size of [`put_open_raw`]'s encoding, computed arithmetically (no
/// encode) — the "bytes we did not send" side of the compression counters.
fn raw_open_size(open: &OpenShard) -> usize {
    let points = |ps: &[Vec<f64>]| 4 + ps.iter().map(|p| 4 + 8 * p.len()).sum::<usize>();
    let choices = |cs: &[Option<u32>]| {
        4 + cs
            .iter()
            .map(|c| 1 + 4 * c.is_some() as usize)
            .sum::<usize>()
    };
    let kernel = match open.kernel {
        Kernel::Rbf { .. } => 9,
        _ => 1,
    };
    2 + 8
        + 4
        + 4
        + kernel
        + 4
        + 4
        + open
            .examples
            .iter()
            .map(|(_, c)| 4 + points(c))
            .sum::<usize>()
        + points(&open.val_x)
        + choices(&open.truth_choice)
        + choices(&open.default_choice)
}

/// Encode a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Open(open) => {
            put_open(&mut out, open, open.n_threads);
            // byte accounting, mirroring the stream codec's counters: what
            // went on the wire vs what the fixed-width layout would have cost
            let delta_total = cp_obs::counter!("rpc.codec.open_bytes_delta");
            let raw_total = cp_obs::counter!("rpc.codec.open_bytes_raw");
            delta_total.add(out.len() as u64);
            raw_total.add(raw_open_size(open) as u64);
            let (d, r) = (delta_total.get(), raw_total.get());
            if d > 0 {
                cp_obs::gauge!("rpc.codec.open_compression_ratio").set(r as f64 / d as f64);
            }
        }
        Request::Scan {
            session,
            val,
            k,
            semiring,
            pins,
        } => {
            put_u8(&mut out, REQ_SCAN);
            put_u64(&mut out, *session);
            put_u32(&mut out, *val);
            put_u32(&mut out, *k);
            put_u8(&mut out, *semiring);
            match pins {
                None => put_u8(&mut out, 0),
                Some(p) => {
                    put_u8(&mut out, 1);
                    put_pins(&mut out, p);
                }
            }
        }
        Request::ExtremeSummary {
            session,
            val,
            k,
            pins,
        } => {
            put_u8(&mut out, REQ_EXTREME_SUMMARY);
            put_u64(&mut out, *session);
            put_u32(&mut out, *val);
            put_u32(&mut out, *k);
            match pins {
                None => put_u8(&mut out, 0),
                Some(p) => {
                    put_u8(&mut out, 1);
                    put_pins(&mut out, p);
                }
            }
        }
        Request::Step {
            session,
            local_row,
            expect_cleaned,
        } => {
            put_u8(&mut out, REQ_STEP);
            put_u64(&mut out, *session);
            put_u32(&mut out, *local_row);
            put_u32(&mut out, *expect_cleaned);
        }
        Request::SyncStatus { session, bits } => {
            put_u8(&mut out, REQ_SYNC_STATUS);
            put_u64(&mut out, *session);
            put_status_bits(&mut out, bits);
        }
        Request::Status { session } => {
            put_u8(&mut out, REQ_STATUS);
            put_u64(&mut out, *session);
        }
        Request::Stats { session } => {
            put_u8(&mut out, REQ_STATS);
            put_u64(&mut out, *session);
        }
        Request::Close { session } => {
            put_u8(&mut out, REQ_CLOSE);
            put_u64(&mut out, *session);
        }
        Request::Shutdown => put_u8(&mut out, REQ_SHUTDOWN),
        Request::Ping => put_u8(&mut out, REQ_PING),
        Request::Deadline { budget_us, inner } => {
            put_u8(&mut out, REQ_DEADLINE);
            put_varint_u64(&mut out, *budget_us);
            out.extend_from_slice(&encode_request(inner));
        }
    }
    out
}

/// Decode a frame payload into a request.
pub fn decode_request(buf: &[u8]) -> RpcResult<Request> {
    let mut r = Reader::new(buf);
    let req = match r.u8("request tag")? {
        REQ_OPEN => match r.u8("open version")? {
            OPEN_V_RAW => {
                let start = r.usize("shard start")?;
                let n_labels = r.u32("n_labels")? as usize;
                let k = r.u32("config k")? as usize;
                let kernel = get_kernel(&mut r)?;
                let n_threads = r.u32("n_threads")? as usize;
                let n_examples = r.count(5, "examples")?;
                let mut examples = Vec::with_capacity(n_examples);
                for _ in 0..n_examples {
                    let label = r.u32("example label")? as Label;
                    let candidates = get_points(&mut r)?;
                    examples.push((label, candidates));
                }
                let val_x = get_points(&mut r)?;
                let truth_choice = get_choices(&mut r)?;
                let default_choice = get_choices(&mut r)?;
                Request::Open(Box::new(OpenShard {
                    start,
                    n_labels,
                    k,
                    kernel,
                    n_threads,
                    examples,
                    val_x,
                    truth_choice,
                    default_choice,
                }))
            }
            OPEN_V_DELTA => {
                let start = r.varint_u64("shard start")? as usize;
                let n_labels = r.varint_u64("n_labels")? as usize;
                let k = r.varint_u64("config k")? as usize;
                let kernel = get_kernel(&mut r)?;
                let n_threads = r.varint_u64("n_threads")? as usize;
                let n_examples = varint_count(&mut r, "examples")?;
                let mut examples = Vec::with_capacity(n_examples);
                let mut prev: Vec<u64> = Vec::new();
                for _ in 0..n_examples {
                    let label = r.varint_u64("example label")? as Label;
                    let candidates = get_delta_points(&mut r, &mut prev)?;
                    examples.push((label, candidates));
                }
                let val_x = get_delta_points(&mut r, &mut prev)?;
                let truth_choice = get_varint_choices(&mut r)?;
                let default_choice = get_varint_choices(&mut r)?;
                Request::Open(Box::new(OpenShard {
                    start,
                    n_labels,
                    k,
                    kernel,
                    n_threads,
                    examples,
                    val_x,
                    truth_choice,
                    default_choice,
                }))
            }
            tag => {
                return Err(RpcError::BadTag {
                    what: "open version",
                    tag,
                })
            }
        },
        REQ_SCAN => {
            let session = r.u64("scan session")?;
            let val = r.u32("scan val")?;
            let k = r.u32("scan k")?;
            let semiring = r.u8("scan semiring")?;
            let pins = match r.u8("scan pins flag")? {
                0 => None,
                1 => Some(get_pins(&mut r)?),
                tag => {
                    return Err(RpcError::BadTag {
                        what: "scan pins flag",
                        tag,
                    })
                }
            };
            Request::Scan {
                session,
                val,
                k,
                semiring,
                pins,
            }
        }
        REQ_EXTREME_SUMMARY => {
            let session = r.u64("summary session")?;
            let val = r.u32("summary val")?;
            let k = r.u32("summary k")?;
            let pins = match r.u8("summary pins flag")? {
                0 => None,
                1 => Some(get_pins(&mut r)?),
                tag => {
                    return Err(RpcError::BadTag {
                        what: "summary pins flag",
                        tag,
                    })
                }
            };
            Request::ExtremeSummary {
                session,
                val,
                k,
                pins,
            }
        }
        REQ_STEP => Request::Step {
            session: r.u64("step session")?,
            local_row: r.u32("step row")?,
            expect_cleaned: r.u32("step expected cleaned count")?,
        },
        REQ_SYNC_STATUS => Request::SyncStatus {
            session: r.u64("sync session")?,
            bits: get_status_bits(&mut r)?,
        },
        REQ_STATUS => Request::Status {
            session: r.u64("status session")?,
        },
        REQ_STATS => Request::Stats {
            session: r.u64("stats session")?,
        },
        REQ_CLOSE => Request::Close {
            session: r.u64("close session")?,
        },
        REQ_SHUTDOWN => Request::Shutdown,
        REQ_PING => Request::Ping,
        REQ_DEADLINE => {
            let budget_us = r.varint_u64("deadline budget")?;
            let rest = r.take(r.remaining(), "deadline inner request")?;
            let inner = decode_request(rest)?;
            if matches!(inner, Request::Deadline { .. }) {
                return Err(RpcError::Malformed("deadline envelopes do not nest".into()));
            }
            Request::Deadline {
                budget_us,
                inner: Box::new(inner),
            }
        }
        tag => {
            return Err(RpcError::BadTag {
                what: "request",
                tag,
            })
        }
    };
    r.finish("request")?;
    Ok(req)
}

/// Encode a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Ok => put_u8(&mut out, RESP_OK),
        Response::Opened { session, n_rows } => {
            put_u8(&mut out, RESP_OPENED);
            put_u64(&mut out, *session);
            put_usize(&mut out, *n_rows);
        }
        Response::Stream(bytes) => {
            put_u8(&mut out, RESP_STREAM);
            put_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
        Response::Summary(bytes) => {
            put_u8(&mut out, RESP_SUMMARY);
            put_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
        Response::Status(status) => {
            put_u8(&mut out, RESP_STATUS);
            put_usize(&mut out, status.start);
            put_usize(&mut out, status.n_rows);
            put_usize(&mut out, status.n_cleaned);
            put_pins(&mut out, &status.pins);
            put_status_bits(&mut out, &status.global_cp);
        }
        Response::Stats(bytes) => {
            put_u8(&mut out, RESP_STATS);
            put_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
        Response::Error(msg) => {
            put_u8(&mut out, RESP_ERROR);
            put_string(&mut out, msg);
        }
        Response::Busy(msg) => {
            put_u8(&mut out, RESP_BUSY);
            put_string(&mut out, msg);
        }
        Response::Expired(msg) => {
            put_u8(&mut out, RESP_EXPIRED);
            put_string(&mut out, msg);
        }
    }
    out
}

/// Decode a frame payload into a response.
pub fn decode_response(buf: &[u8]) -> RpcResult<Response> {
    let mut r = Reader::new(buf);
    let resp = match r.u8("response tag")? {
        RESP_OK => Response::Ok,
        RESP_OPENED => Response::Opened {
            session: r.u64("opened session")?,
            n_rows: r.usize("opened rows")?,
        },
        RESP_STREAM => {
            let n = r.count(1, "stream bytes")?;
            Response::Stream(r.take(n, "stream payload")?.to_vec())
        }
        RESP_SUMMARY => {
            let n = r.count(1, "summary bytes")?;
            Response::Summary(r.take(n, "summary payload")?.to_vec())
        }
        RESP_STATUS => Response::Status(ShardStatus {
            start: r.usize("status start")?,
            n_rows: r.usize("status rows")?,
            n_cleaned: r.usize("status cleaned")?,
            pins: get_pins(&mut r)?,
            global_cp: get_status_bits(&mut r)?,
        }),
        RESP_STATS => {
            let n = r.count(1, "stats bytes")?;
            Response::Stats(r.take(n, "stats payload")?.to_vec())
        }
        RESP_ERROR => Response::Error(get_string(&mut r)?),
        RESP_BUSY => Response::Busy(get_string(&mut r)?),
        RESP_EXPIRED => Response::Expired(get_string(&mut r)?),
        tag => {
            return Err(RpcError::BadTag {
                what: "response",
                tag,
            })
        }
    };
    r.finish("response")?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_requests_round_trip() {
        let cases = vec![
            Request::Scan {
                session: 7,
                val: 3,
                k: 2,
                semiring: 2,
                pins: Some(Pins::from_pairs(4, &[(1, 2), (3, 0)])),
            },
            Request::Scan {
                session: u64::MAX,
                val: 0,
                k: 1,
                semiring: 1,
                pins: None,
            },
            Request::ExtremeSummary {
                session: 2,
                val: 2,
                k: 3,
                pins: Some(Pins::from_pairs(3, &[(0, 1)])),
            },
            Request::ExtremeSummary {
                session: 1,
                val: 0,
                k: 1,
                pins: None,
            },
            Request::Step {
                session: 3,
                local_row: 9,
                expect_cleaned: 4,
            },
            Request::SyncStatus {
                session: 5,
                bits: vec![true, false, true],
            },
            Request::Status { session: 11 },
            Request::Stats { session: 0 },
            Request::Stats { session: 13 },
            Request::Close { session: 12 },
            Request::Shutdown,
            Request::Ping,
            Request::Deadline {
                budget_us: 0,
                inner: Box::new(Request::Ping),
            },
            Request::Deadline {
                budget_us: u64::MAX,
                inner: Box::new(Request::Step {
                    session: 3,
                    local_row: 9,
                    expect_cleaned: 4,
                }),
            },
        ];
        for req in cases {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn deadline_envelopes_do_not_nest_and_reject_hostile_bytes() {
        let nested = Request::Deadline {
            budget_us: 5,
            inner: Box::new(Request::Deadline {
                budget_us: 5,
                inner: Box::new(Request::Ping),
            }),
        };
        assert!(matches!(
            decode_request(&encode_request(&nested)),
            Err(RpcError::Malformed(_))
        ));
        // an envelope around nothing is a truncation, not a panic
        let empty = encode_request(&Request::Deadline {
            budget_us: 9,
            inner: Box::new(Request::Ping),
        });
        for cut in 0..empty.len() {
            assert!(decode_request(&empty[..cut]).is_err(), "cut at {cut}");
        }
        // trailing bytes after the inner request are rejected by the inner
        // decoder's finish check
        let mut extended = empty;
        extended.push(0);
        assert!(decode_request(&extended).is_err());
    }

    #[test]
    fn open_round_trips() {
        let open = OpenShard {
            start: 5,
            n_labels: 3,
            k: 2,
            kernel: Kernel::Rbf { gamma: 0.5 },
            n_threads: 4,
            examples: vec![
                (0, vec![vec![0.0, 1.0]]),
                (2, vec![vec![1.0, 2.0], vec![3.0, 4.0]]),
            ],
            val_x: vec![vec![0.5, 0.5]],
            truth_choice: vec![None, Some(1)],
            default_choice: vec![None, Some(0)],
        };
        let req = Request::Open(Box::new(open));
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Ok,
            Response::Opened {
                session: 42,
                n_rows: 12,
            },
            Response::Stream(vec![1, 2, 3]),
            Response::Summary(vec![7, 8]),
            Response::Status(ShardStatus {
                start: 2,
                n_rows: 3,
                n_cleaned: 1,
                pins: Pins::single(3, 1, 0),
                global_cp: vec![false, true],
            }),
            Response::Stats(vec![1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
            Response::Error("nope".into()),
            Response::Busy("sessions at capacity".into()),
            Response::Expired("queued 3ms past a 1ms budget".into()),
        ];
        for resp in cases {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn open_raw_layout_still_decodes_and_matches_delta() {
        let open = OpenShard {
            start: 3,
            n_labels: 2,
            k: 1,
            kernel: Kernel::default(),
            n_threads: 2,
            examples: vec![(1, vec![vec![1.5, 2.5], vec![1.5, 2.75]])],
            val_x: vec![vec![0.25, 0.5]],
            truth_choice: vec![Some(0)],
            default_choice: vec![Some(1)],
        };
        let mut raw = Vec::new();
        put_open_raw(&mut raw, &open, open.n_threads);
        let mut delta = Vec::new();
        put_open(&mut delta, &open, open.n_threads);
        let expected = Request::Open(Box::new(open));
        assert_eq!(decode_request(&raw).unwrap(), expected);
        assert_eq!(decode_request(&delta).unwrap(), expected);
        assert!(matches!(
            decode_request(&[REQ_OPEN, 77]),
            Err(RpcError::BadTag {
                what: "open version",
                ..
            })
        ));
    }

    #[test]
    fn delta_open_compresses_candidate_grids() {
        // a realistic dirty column: candidates are near-identical imputations
        let examples = (0..64)
            .map(|i| {
                let base = 10.0 + i as f64 * 0.125;
                (i % 2, vec![vec![base, 1.0], vec![base + 0.5, 1.0]])
            })
            .collect();
        let open = OpenShard {
            start: 0,
            n_labels: 2,
            k: 3,
            kernel: Kernel::default(),
            n_threads: 1,
            examples,
            val_x: vec![vec![10.5, 1.0]; 8],
            truth_choice: vec![Some(0); 64],
            default_choice: vec![Some(1); 64],
        };
        let mut delta = Vec::new();
        put_open(&mut delta, &open, open.n_threads);
        let raw = raw_open_size(&open);
        assert!(
            delta.len() * 2 < raw,
            "delta {} bytes vs raw {} bytes — expected at least 2x",
            delta.len(),
            raw
        );
        // and the raw-size arithmetic matches an actual raw encoding
        let mut raw_bytes = Vec::new();
        put_open_raw(&mut raw_bytes, &open, open.n_threads);
        assert_eq!(raw_bytes.len(), raw);
    }

    #[test]
    fn truncated_and_hostile_open_payloads_never_panic() {
        let open = OpenShard {
            start: 1,
            n_labels: 2,
            k: 1,
            kernel: Kernel::Rbf { gamma: 0.25 },
            n_threads: 1,
            examples: vec![(0, vec![vec![4.0], vec![5.0]]), (1, vec![vec![6.0]])],
            val_x: vec![vec![1.0]],
            truth_choice: vec![Some(1), None],
            default_choice: vec![Some(0), None],
        };
        for encode in [
            put_open as fn(&mut Vec<u8>, &OpenShard, usize),
            put_open_raw,
        ] {
            let mut good = Vec::new();
            encode(&mut good, &open, 1);
            assert!(decode_request(&good).is_ok());
            // every prefix fails cleanly
            for cut in 0..good.len() {
                assert!(decode_request(&good[..cut]).is_err(), "cut at {cut}");
            }
            // every single-byte corruption decodes, errors, or round-trips —
            // but never panics
            for i in 0..good.len() {
                let mut bytes = good.clone();
                bytes[i] ^= 0xFF;
                let _ = decode_request(&bytes);
            }
        }
        // hostile counts are rejected before allocation
        let mut hostile = vec![REQ_OPEN, OPEN_V_DELTA];
        hostile.push(0); // start
        hostile.push(2); // n_labels
        hostile.push(1); // k
        hostile.push(1); // kernel NegEuclidean
        hostile.push(1); // n_threads
        hostile.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]); // huge n_examples
        assert!(matches!(
            decode_request(&hostile),
            Err(RpcError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        assert!(matches!(
            decode_request(&[0xfe]),
            Err(RpcError::BadTag {
                what: "request",
                ..
            })
        ));
        assert!(matches!(
            decode_response(&[0xfe]),
            Err(RpcError::BadTag {
                what: "response",
                ..
            })
        ));
        assert!(matches!(
            decode_request(&[]),
            Err(RpcError::Truncated { .. })
        ));
    }
}
