//! Algebraic and concurrency properties of the metric primitives.
//!
//! * histogram merge is associative with [`HistogramSnapshot::empty`] as its
//!   identity — even at the saturation boundary, so cross-process rollups
//!   never depend on merge order;
//! * the snapshot wire encoding round-trips bit-exactly;
//! * counters and histograms are exact under contention: N threads × M
//!   increments lose nothing (relaxed ordering still guarantees atomicity);
//! * registry snapshots are monotone for monotone metrics.

use cp_obs::snapshot::{HistogramSnapshot, Snapshot, N_BUCKETS};
use proptest::prelude::*;

/// Arbitrary histogram state: raw samples span the full `u64` range, and
/// every third one is pushed to the saturation boundary so the saturating
/// merge arithmetic is actually exercised, not just ordinary addition.
fn arb_hist() -> impl Strategy<Value = HistogramSnapshot> {
    (
        proptest::collection::vec(0u64..=u64::MAX, N_BUCKETS..=N_BUCKETS),
        0u64..=u64::MAX,
    )
        .prop_map(|(mut buckets, sum_us)| {
            for (i, b) in buckets.iter_mut().enumerate() {
                match i % 3 {
                    0 => *b %= 1_000_000,
                    1 => *b = u64::MAX - (*b % 2),
                    _ => {}
                }
            }
            HistogramSnapshot { buckets, sum_us }
        })
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        proptest::collection::vec(("[a-z]{1,12}", 0u64..u64::MAX), 0..=4),
        proptest::collection::vec(("[a-z]{1,12}", -1_000_000i64..1_000_000), 0..=4),
        proptest::collection::vec(("[a-z]{1,12}", arb_hist()), 0..=3),
    )
        .prop_map(|(counters, gauges, hists)| {
            let mut snap = Snapshot::default();
            for (k, v) in counters {
                snap.counters.insert(k, v);
            }
            for (k, v) in gauges {
                snap.gauges.insert(k, v as f64 / 16.0);
            }
            for (k, h) in hists {
                snap.histograms.insert(k, h);
            }
            snap
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_is_associative(a in arb_hist(), b in arb_hist(), c in arb_hist()) {
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    #[test]
    fn histogram_merge_is_commutative_with_empty_identity(a in arb_hist(), b in arb_hist()) {
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        prop_assert_eq!(a.merge(&HistogramSnapshot::empty()), a.clone());
        prop_assert_eq!(HistogramSnapshot::empty().merge(&a), a);
    }

    #[test]
    fn histogram_diff_inverts_merge_below_saturation(
        a in proptest::collection::vec(0u64..1_000_000, N_BUCKETS..=N_BUCKETS),
        b in proptest::collection::vec(0u64..1_000_000, N_BUCKETS..=N_BUCKETS),
    ) {
        let a = HistogramSnapshot { sum_us: a.iter().sum(), buckets: a };
        let b = HistogramSnapshot { sum_us: b.iter().sum(), buckets: b };
        prop_assert_eq!(a.merge(&b).diff(&b), a);
    }

    #[test]
    fn snapshot_merge_identity_and_wire_round_trip(snap in arb_snapshot()) {
        prop_assert_eq!(snap.merge(&Snapshot::default()), snap.clone());
        prop_assert_eq!(Snapshot::default().merge(&snap), snap.clone());
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        prop_assert_eq!(decoded, snap);
    }

    /// Garbage bytes never panic the snapshot decoder.
    #[test]
    fn snapshot_decode_survives_garbage(bytes in proptest::collection::vec(0u8..=255, 0..=128)) {
        let _ = Snapshot::decode(&bytes);
    }
}

/// 8 threads × 5000 increments through independently-fetched handles land
/// exactly — the registry hands out shared state, and relaxed atomics lose
/// nothing.
#[cfg(not(feature = "off"))]
#[test]
fn concurrent_increments_are_exact() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let c = cp_obs::counter("test.primitives.concurrent");
                let h = cp_obs::histogram("test.primitives.concurrent_hist");
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record_us(t * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(
        cp_obs::counter("test.primitives.concurrent").get(),
        THREADS * PER_THREAD
    );
    let h = cp_obs::histogram("test.primitives.concurrent_hist").snapshot();
    assert_eq!(h.count(), THREADS * PER_THREAD);
    // sum of 0..N*M recorded exactly once each
    let n = THREADS * PER_THREAD;
    assert_eq!(h.sum_us, n * (n - 1) / 2);
}

/// Snapshots taken across ongoing work are monotone for counters and
/// histograms: no bucket or counter ever reads lower than an earlier read.
#[cfg(not(feature = "off"))]
#[test]
fn snapshots_are_monotone_under_load() {
    let c = cp_obs::counter("test.primitives.monotone");
    let h = cp_obs::histogram("test.primitives.monotone_hist");
    let mut prev = cp_obs::snapshot();
    for round in 0..50u64 {
        c.add(round);
        h.record_us(round * 37);
        let cur = cp_obs::snapshot();
        assert!(
            cur.counter("test.primitives.monotone") >= prev.counter("test.primitives.monotone")
        );
        let (ch, ph) = (
            cur.histogram("test.primitives.monotone_hist"),
            prev.histogram("test.primitives.monotone_hist"),
        );
        assert!(ch.count() >= ph.count() && ch.sum_us >= ph.sum_us);
        for (a, b) in ch.buckets.iter().zip(&ph.buckets) {
            assert!(a >= b, "bucket counts must never regress");
        }
        // the diff against any earlier snapshot is itself well-formed
        assert_eq!(ch.diff(&ph).count(), ch.count() - ph.count());
        prev = cur;
    }
}
