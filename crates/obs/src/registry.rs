//! The live metric registry: named handles over shared atomics.
//!
//! Registration (name → handle) takes a short-lived mutex; every recording
//! operation after that is a lone atomic on an `Arc`-shared cell, so hot
//! paths pay one `fetch_add` — no locks, no allocation. Call sites cache
//! their handle in a `OnceLock` via the `counter!`/`gauge!`/`histogram!`
//! macros so even the registry lookup happens once per site.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::snapshot::{bucket_index, HistogramSnapshot, Snapshot, N_BUCKETS};

/// A monotone event counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A level reading (stored as `f64` bits in an atomic).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

impl Gauge {
    /// Overwrite the reading.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adjust the reading by `delta` (CAS loop; gauges are low-frequency).
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current reading.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared histogram state: one atomic per bucket plus the exact sum.
struct HistogramCore {
    buckets: [AtomicU64; N_BUCKETS],
    sum_us: AtomicU64,
}

/// A fixed-bucket latency/value histogram over the √2 ladder in
/// [`crate::snapshot::BUCKET_BOUNDS_US`]. Recording is two relaxed
/// `fetch_add`s.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={})", self.count())
    }
}

impl Histogram {
    /// Record a sample of `us` microseconds.
    pub fn record_us(&self, us: u64) {
        self.0.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.0.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Record an elapsed [`Duration`].
    pub fn record(&self, elapsed: Duration) {
        self.record_us(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .fold(0u64, |a, b| a.saturating_add(b.load(Ordering::Relaxed)))
    }

    /// A point-in-time copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum_us: self.0.sum_us.load(Ordering::Relaxed),
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

fn registry() -> &'static Mutex<HashMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The counter registered under `name`, creating it on first use.
///
/// Panics if `name` is already registered as a different metric kind — a
/// naming bug worth failing loudly on.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {name:?} is registered as a non-counter"),
    }
}

/// The gauge registered under `name`, creating it (at 0.0) on first use.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits())))))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name:?} is registered as a non-gauge"),
    }
}

/// The histogram registered under `name`, creating it on first use.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    match reg.entry(name.to_string()).or_insert_with(|| {
        Metric::Histogram(Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        })))
    }) {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric {name:?} is registered as a non-histogram"),
    }
}

/// Unregister every metric whose name starts with `prefix`.
///
/// Existing handles (including `OnceLock`-cached macro handles) keep
/// working — they share the underlying atomics — but the metrics stop
/// appearing in [`snapshot`] and the names can be re-registered fresh.
/// This is how per-session metric families are reclaimed when a session
/// closes, instead of leaking one entry per session for the life of the
/// process.
pub fn remove_prefix(prefix: &str) {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.retain(|name, _| !name.starts_with(prefix));
}

/// A point-in-time [`Snapshot`] of every registered metric. Individual
/// values are read without stopping writers, so concurrent metrics may be
/// mutually skewed by in-flight increments — each value is still exact for
/// a moment during the call.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut snap = Snapshot::default();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => {
                snap.counters.insert(name.clone(), c.get());
            }
            Metric::Gauge(g) => {
                snap.gauges.insert(name.clone(), g.get());
            }
            Metric::Histogram(h) => {
                snap.histograms.insert(name.clone(), h.snapshot());
            }
        }
    }
    snap
}

/// A scoped timer: created against a histogram, records the elapsed
/// microseconds when dropped. Built by the `span!` macro.
pub struct SpanGuard {
    hist: Histogram,
    start: Instant,
    armed: bool,
}

impl SpanGuard {
    /// Start timing against `hist`.
    pub fn new(hist: Histogram) -> Self {
        SpanGuard {
            hist,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Drop without recording (e.g. on an error path that shouldn't pollute
    /// the success-latency histogram).
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.start.elapsed());
        }
    }
}

/// A manual stopwatch for sites that need the elapsed value itself (to
/// record into several histograms, or branch on). Compiles to nothing
/// under the `off` feature, unlike a raw `Instant`.
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Microseconds since [`Stopwatch::start`].
    pub fn elapsed_us(&self) -> u64 {
        self.0.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_through_the_registry() {
        let a = counter("test.registry.shared");
        let b = counter("test.registry.shared");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(snapshot().counter("test.registry.shared"), 3);
    }

    #[test]
    fn gauge_add_and_set() {
        let g = gauge("test.registry.gauge");
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_mismatch_panics() {
        gauge("test.registry.kind_clash");
        counter("test.registry.kind_clash");
    }

    #[test]
    fn span_guard_records_once_and_cancel_suppresses() {
        let h = histogram("test.registry.span");
        {
            let _g = SpanGuard::new(h.clone());
        }
        assert_eq!(h.count(), 1);
        SpanGuard::new(h.clone()).cancel();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn remove_prefix_unregisters_only_the_family() {
        counter("test.registry.rm.a.steps").inc();
        counter("test.registry.rm.a.scans").add(2);
        counter("test.registry.rm.b.steps").add(5);
        let kept_handle = counter("test.registry.rm.a.steps");
        remove_prefix("test.registry.rm.a.");
        let snap = snapshot();
        assert!(!snap.counters.contains_key("test.registry.rm.a.steps"));
        assert!(!snap.counters.contains_key("test.registry.rm.a.scans"));
        assert_eq!(snap.counter("test.registry.rm.b.steps"), 5);
        // Stale handles still work against the detached atomics...
        kept_handle.inc();
        assert_eq!(kept_handle.get(), 2);
        // ...and the name is free to register fresh, starting from zero.
        assert_eq!(counter("test.registry.rm.a.steps").get(), 0);
    }

    #[test]
    fn histogram_records_land_in_ladder_buckets() {
        let h = histogram("test.registry.hist");
        h.record_us(0);
        h.record_us(1);
        h.record_us(1000);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum_us, 1001);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[bucket_index(1000)], 1);
    }
}
