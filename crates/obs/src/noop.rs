//! `off`-feature twins of the registry types: identical API, zero-sized
//! state, every operation a no-op the optimizer deletes. [`snapshot`]
//! returns an empty [`Snapshot`] — decoding *remote* snapshots stays
//! available through `snapshot::Snapshot` regardless of this feature.

use std::time::Duration;

use crate::snapshot::{HistogramSnapshot, Snapshot};

/// No-op counter (see `registry::Counter` for the live version).
#[derive(Clone, Copy, Debug)]
pub struct Counter;

impl Counter {
    /// No-op.
    pub fn inc(&self) {}

    /// No-op.
    pub fn add(&self, _n: u64) {}

    /// Always 0.
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op gauge.
#[derive(Clone, Copy, Debug)]
pub struct Gauge;

impl Gauge {
    /// No-op.
    pub fn set(&self, _v: f64) {}

    /// No-op.
    pub fn add(&self, _delta: f64) {}

    /// Always 0.0.
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op histogram.
#[derive(Clone, Copy, Debug)]
pub struct Histogram;

impl Histogram {
    /// No-op.
    pub fn record_us(&self, _us: u64) {}

    /// No-op.
    pub fn record(&self, _elapsed: Duration) {}

    /// Always 0.
    pub fn count(&self) -> u64 {
        0
    }

    /// Always empty.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

/// Counter handle under `name` (the name is ignored; nothing registers).
pub fn counter(_name: &str) -> Counter {
    Counter
}

/// Gauge handle under `name`.
pub fn gauge(_name: &str) -> Gauge {
    Gauge
}

/// Histogram handle under `name`.
pub fn histogram(_name: &str) -> Histogram {
    Histogram
}

/// Always the empty snapshot.
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// No-op (nothing is registered, so nothing to remove).
pub fn remove_prefix(_prefix: &str) {}

/// No-op span guard: construction and drop cost nothing.
pub struct SpanGuard;

impl SpanGuard {
    /// No-op.
    pub fn new(_hist: Histogram) -> Self {
        SpanGuard
    }

    /// No-op.
    pub fn cancel(self) {}
}

/// No-op stopwatch: reads no clock.
pub struct Stopwatch;

impl Stopwatch {
    /// No-op.
    pub fn start() -> Self {
        Stopwatch
    }

    /// Always 0.
    pub fn elapsed_us(&self) -> u64 {
        0
    }
}
