//! Point-in-time metric values: the [`Snapshot`] a registry exports, the
//! fixed-bucket [`HistogramSnapshot`], and their wire encoding.
//!
//! Everything here is plain data — no atomics, no registry — so snapshots
//! can be merged across processes, diffed across time, rendered as text or
//! JSON, and shipped over the shard protocol's `Stats` request. The types
//! stay fully real under the `off` feature: a client compiled without
//! instrumentation can still decode and render a remote server's snapshot.

use std::collections::BTreeMap;

/// Histogram bucket upper bounds: a geometric ladder with ratio √2 starting
/// at 1 µs and topping out at ~67 s. Bucket `i` counts samples `v` with
/// `BUCKET_BOUNDS_US[i-1] < v <= BUCKET_BOUNDS_US[i]` (bucket 0 takes
/// everything up to 1); one overflow bucket beyond the ladder makes
/// [`N_BUCKETS`]. Two buckets per doubling keeps the p99 read within ~41%
/// of the true value at 53 fixed slots per histogram.
pub const BUCKET_BOUNDS_US: [u64; 52] = [
    1, 2, 3, 4, 6, 8, 11, 16, 23, 32, 45, 64, 91, 128, 181, 256, 362, 512, 724, 1024, 1448, 2048,
    2896, 4096, 5793, 8192, 11585, 16384, 23170, 32768, 46341, 65536, 92682, 131072, 185364,
    262144, 370728, 524288, 741455, 1048576, 1482910, 2097152, 2965821, 4194304, 5931642, 8388608,
    11863283, 16777216, 23726566, 33554432, 47453133, 67108864,
];

/// Total bucket count: the bounded ladder plus one overflow bucket.
pub const N_BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// The bucket index a sample of `us` microseconds lands in.
pub fn bucket_index(us: u64) -> usize {
    BUCKET_BOUNDS_US.partition_point(|&bound| bound < us)
}

/// One histogram's point-in-time state: per-bucket sample counts over the
/// shared [`BUCKET_BOUNDS_US`] ladder plus the exact running sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample count per bucket; always [`N_BUCKETS`] entries.
    pub buckets: Vec<u64>,
    /// Exact sum of all recorded values (µs), for means.
    pub sum_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A histogram with no samples — the identity of [`Self::merge`].
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; N_BUCKETS],
            sum_us: 0,
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Mean recorded value in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us as f64 / n as f64
        }
    }

    /// Element-wise sum of two histograms (saturating, so the operation is
    /// associative even at the boundary): the merge shard servers' and
    /// engines' snapshots combine under. [`Self::empty`] is its identity —
    /// the same laws the factor-polynomial merge obeys, property-tested in
    /// `tests/primitives.rs`.
    pub fn merge(&self, other: &Self) -> Self {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(&a, &b)| a.saturating_add(b))
                .collect(),
            sum_us: self.sum_us.saturating_add(other.sum_us),
        }
    }

    /// Bucket-wise `self - earlier` (saturating): the delta a monotone
    /// histogram accumulated between two snapshots.
    pub fn diff(&self, earlier: &Self) -> Self {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(&a, &b)| a.saturating_sub(b))
                .collect(),
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
        }
    }

    /// The value (µs) at quantile `q` in `[0, 1]`, read as the upper bound
    /// of the bucket holding the `ceil(q·n)`-th sample — an overestimate by
    /// at most one √2 bucket ratio. Samples in the overflow bucket report
    /// twice the top bound; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= target {
                return match BUCKET_BOUNDS_US.get(i) {
                    Some(&bound) => bound as f64,
                    None => (BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1] * 2) as f64,
                };
            }
        }
        (BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1] * 2) as f64
    }

    /// Median (µs).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile (µs).
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile (µs).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// A point-in-time view of every registered metric, keyed by name.
/// `BTreeMap`s keep iteration (and therefore text, JSON and wire renderings)
/// deterministic.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Snapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Level readings (last-set values).
    pub gauges: BTreeMap<String, f64>,
    /// Latency/value histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// `true` iff no metric is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A counter's value (0 when absent — an unregistered counter has
    /// counted nothing).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (0.0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// A histogram's state, if registered.
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Combine two snapshots (e.g. from two server processes): counters and
    /// histograms add; gauges — level readings, not totals — keep the
    /// maximum. Missing keys adopt the present side's value, which makes
    /// [`Snapshot::default`] the merge identity.
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (k, &v) in &other.counters {
            let slot = out.counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(v);
        }
        for (k, &v) in &other.gauges {
            let slot = out.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            *slot = slot.max(v);
        }
        for (k, v) in &other.histograms {
            let merged = match out.histograms.get(k) {
                Some(mine) => mine.merge(v),
                None => v.clone(),
            };
            out.histograms.insert(k.clone(), merged);
        }
        out
    }

    /// What accumulated between `earlier` and `self`: counters and
    /// histograms subtract (saturating — a restarted process reads as
    /// zero, not an underflow); gauges keep `self`'s reading.
    pub fn diff(&self, earlier: &Self) -> Self {
        let mut out = self.clone();
        for (k, v) in out.counters.iter_mut() {
            *v = v.saturating_sub(earlier.counter(k));
        }
        for (k, v) in out.histograms.iter_mut() {
            if let Some(e) = earlier.histograms.get(k) {
                *v = v.diff(e);
            }
        }
        out
    }

    /// The sub-snapshot of metrics whose name satisfies `pred` — how the
    /// server answers a session-scoped `Stats` request.
    pub fn filtered(&self, mut pred: impl FnMut(&str) -> bool) -> Self {
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| pred(k))
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| pred(k))
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| pred(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Human-readable exposition: one line per metric, histograms as
    /// `count/mean/p50/p90/p99`. The `--stats-interval` dump format.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter   {k} = {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge     {k} = {v:.3}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {k}: count={} mean={:.1}us p50={:.0}us p90={:.0}us p99={:.0}us\n",
                h.count(),
                h.mean_us(),
                h.p50(),
                h.p90(),
                h.p99()
            ));
        }
        out
    }

    /// Hand-rolled JSON exposition (no dependencies): counters and gauges
    /// as objects, histograms as `{count, sum_us, mean_us, p50..p99}`
    /// summaries. Non-finite gauge values render as `null`.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.3}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    \"{}\": {v}", esc(k)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    \"{}\": {}", esc(k), num(*v)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"sum_us\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}}}",
                esc(k),
                h.count(),
                h.sum_us,
                num(h.mean_us()),
                num(h.p50()),
                num(h.p90()),
                num(h.p99())
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Binary wire encoding (big-endian, length-prefixed names) — the
    /// `Stats` response payload. Self-contained so any process can decode a
    /// snapshot without this crate's registry (or with metrics compiled
    /// out).
    pub fn encode(&self) -> Vec<u8> {
        fn put_name(out: &mut Vec<u8>, name: &str) {
            let bytes = name.as_bytes();
            out.extend_from_slice(&(bytes.len().min(u16::MAX as usize) as u16).to_be_bytes());
            out.extend_from_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
        }
        let mut out = vec![SNAPSHOT_WIRE_VERSION];
        out.extend_from_slice(&(self.counters.len() as u32).to_be_bytes());
        for (k, &v) in &self.counters {
            put_name(&mut out, k);
            out.extend_from_slice(&v.to_be_bytes());
        }
        out.extend_from_slice(&(self.gauges.len() as u32).to_be_bytes());
        for (k, &v) in &self.gauges {
            put_name(&mut out, k);
            out.extend_from_slice(&v.to_bits().to_be_bytes());
        }
        out.extend_from_slice(&(self.histograms.len() as u32).to_be_bytes());
        for (k, h) in &self.histograms {
            put_name(&mut out, k);
            out.extend_from_slice(&(h.buckets.len() as u16).to_be_bytes());
            out.extend_from_slice(&h.sum_us.to_be_bytes());
            for &b in &h.buckets {
                out.extend_from_slice(&b.to_be_bytes());
            }
        }
        out
    }

    /// Decode [`Snapshot::encode`]'s output. The input is untrusted (it
    /// crossed a socket): truncations, bogus counts and non-UTF-8 names are
    /// errors, never panics, and no allocation is sized from a length the
    /// remaining bytes can't back.
    pub fn decode(buf: &[u8]) -> Result<Snapshot, String> {
        let mut r = Cursor { buf, pos: 0 };
        let version = r.u8("version")?;
        if version != SNAPSHOT_WIRE_VERSION {
            return Err(format!("unknown snapshot wire version {version}"));
        }
        let mut snap = Snapshot::default();
        let n = r.plausible_count(10, "counters")?;
        for _ in 0..n {
            let name = r.name()?;
            let v = r.u64("counter value")?;
            snap.counters.insert(name, v);
        }
        let n = r.plausible_count(10, "gauges")?;
        for _ in 0..n {
            let name = r.name()?;
            let v = f64::from_bits(r.u64("gauge value")?);
            snap.gauges.insert(name, v);
        }
        let n = r.plausible_count(12, "histograms")?;
        for _ in 0..n {
            let name = r.name()?;
            let n_buckets = r.u16("bucket count")? as usize;
            if n_buckets != N_BUCKETS {
                return Err(format!(
                    "histogram {name:?} has {n_buckets} buckets, expected {N_BUCKETS}"
                ));
            }
            let sum_us = r.u64("histogram sum")?;
            let mut buckets = Vec::with_capacity(n_buckets);
            for _ in 0..n_buckets {
                buckets.push(r.u64("bucket")?);
            }
            snap.histograms
                .insert(name, HistogramSnapshot { buckets, sum_us });
        }
        if r.pos != r.buf.len() {
            return Err(format!("{} trailing bytes", r.buf.len() - r.pos));
        }
        Ok(snap)
    }
}

const SNAPSHOT_WIRE_VERSION: u8 = 1;

/// Minimal bounds-checked reader for [`Snapshot::decode`] (this crate is a
/// leaf — it cannot borrow the RPC layer's `Reader`).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!("truncated snapshot while reading {what}"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, String> {
        Ok(u16::from_be_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_be_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_be_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// An element count rejected *before* any allocation if the remaining
    /// bytes cannot hold `n` elements of at least `min_bytes` each.
    fn plausible_count(&mut self, min_bytes: usize, what: &str) -> Result<usize, String> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_bytes) > self.buf.len() - self.pos {
            return Err(format!("implausible {what} count {n}"));
        }
        Ok(n)
    }

    fn name(&mut self) -> Result<String, String> {
        let len = self.u16("name length")? as usize;
        let bytes = self.take(len, "name")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "metric name is not UTF-8".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_geometric() {
        for w in BUCKET_BOUNDS_US.windows(2) {
            assert!(w[0] < w[1]);
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(
                (1.3..=2.01).contains(&ratio),
                "ratio {ratio} between {} and {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn bucket_index_places_samples_at_their_bound() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            assert_eq!(bucket_index(bound), i);
            assert_eq!(bucket_index(bound + 1), i + 1);
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let mut h = HistogramSnapshot::empty();
        // 90 samples at <=1us, 9 at <=2us, 1 in the overflow bucket
        h.buckets[0] = 90;
        h.buckets[1] = 9;
        h.buckets[N_BUCKETS - 1] = 1;
        h.sum_us = 90 + 18 + 100_000_000;
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 1.0);
        assert_eq!(h.p90(), 1.0);
        assert_eq!(h.p99(), 2.0);
        assert_eq!(
            h.quantile(1.0),
            (BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1] * 2) as f64
        );
        assert_eq!(HistogramSnapshot::empty().p99(), 0.0);
    }

    #[test]
    fn snapshot_diff_subtracts_and_keeps_gauge_readings() {
        let mut earlier = Snapshot::default();
        earlier.counters.insert("a".into(), 3);
        earlier.gauges.insert("g".into(), 9.0);
        let mut later = earlier.clone();
        later.counters.insert("a".into(), 10);
        later.counters.insert("b".into(), 2);
        later.gauges.insert("g".into(), 4.0);
        let d = later.diff(&earlier);
        assert_eq!(d.counter("a"), 7);
        assert_eq!(d.counter("b"), 2);
        assert_eq!(d.gauge("g"), 4.0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut snap = Snapshot::default();
        snap.counters.insert("rpc.server.steps".into(), 42);
        snap.gauges.insert("queue".into(), -1.5);
        let mut h = HistogramSnapshot::empty();
        h.buckets[3] = 7;
        h.sum_us = 28;
        snap.histograms.insert("lat".into(), h);
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
        assert_eq!(
            Snapshot::decode(&Snapshot::default().encode()).unwrap(),
            Snapshot::default()
        );
    }

    #[test]
    fn hostile_snapshot_bytes_are_errors_not_panics() {
        assert!(Snapshot::decode(&[]).is_err());
        assert!(Snapshot::decode(&[99]).is_err());
        // version then an implausible count
        let mut buf = vec![SNAPSHOT_WIRE_VERSION];
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(Snapshot::decode(&buf).is_err());
        // valid prefix, truncated tail
        let mut snap = Snapshot::default();
        snap.counters.insert("x".into(), 1);
        let full = snap.encode();
        for cut in 0..full.len() {
            assert!(Snapshot::decode(&full[..cut]).is_err(), "cut at {cut}");
        }
        // trailing garbage
        let mut padded = full;
        padded.push(0);
        assert!(Snapshot::decode(&padded).is_err());
    }

    #[test]
    fn json_escapes_and_renders() {
        let mut snap = Snapshot::default();
        snap.counters.insert("a\"b\\c".into(), 1);
        snap.gauges.insert("nan".into(), f64::NAN);
        let json = snap.to_json();
        assert!(json.contains("a\\\"b\\\\c"));
        assert!(json.contains("null"));
        let text = snap.render_text();
        assert!(text.contains("counter"));
    }
}
