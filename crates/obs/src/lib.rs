//! # cp-obs — hand-rolled observability for the CPClean stack
//!
//! A process-wide registry of named [`Counter`]s, [`Gauge`]s, and
//! fixed-bucket latency [`Histogram`]s (lock-free atomics on the hot path,
//! mergeable [`Snapshot`]s with p50/p90/p99 extraction), scoped-span timers
//! ([`span!`]) recording elapsed-µs into histograms, and a leveled,
//! rate-limited stderr logger ([`obs_warn!`] and friends, configured by
//! `CP_LOG=error|warn|info|debug`, default `warn`).
//!
//! Like everything under `crates/shims`, this is registry-free and
//! dependency-free: no `prometheus`, no `tracing`, no `log`. The shard
//! protocol serves [`Snapshot::encode`]'s bytes as the `Stats` response, so
//! any client can fetch and [`Snapshot::decode`] a remote server's live
//! metrics.
//!
//! ## Recording
//!
//! Handles are cheap clones of shared atomics; call sites cache them in a
//! `OnceLock` through the macros so each site pays the registry lookup
//! once, then one relaxed `fetch_add` per event:
//!
//! ```
//! let _guard = cp_obs::span!("example.frobnicate_us"); // timed until scope end
//! cp_obs::counter!("example.frobnications").inc();
//! cp_obs::gauge!("example.queue_depth").add(1.0);
//! cp_obs::histogram!("example.batch_size").record_us(17);
//! cp_obs::obs_warn!("example", "queue at {} of {}", 31, 32);
//! # let snap = cp_obs::snapshot();
//! # assert!(cp_obs::Snapshot::decode(&snap.encode()).is_ok());
//! ```
//!
//! ## The `off` feature
//!
//! Building with `--features off` swaps every handle for a zero-sized
//! no-op twin with the identical API: instrumented code compiles to the
//! uninstrumented machine code (the bench crate's `obs-off` feature
//! forwards here for the overhead guard). [`Snapshot`] decoding/rendering
//! and the logger remain fully functional either way.

#[cfg(not(feature = "off"))]
mod registry;
#[cfg(not(feature = "off"))]
pub use registry::{
    counter, gauge, histogram, remove_prefix, snapshot, Counter, Gauge, Histogram, SpanGuard,
    Stopwatch,
};

#[cfg(feature = "off")]
mod noop;
#[cfg(feature = "off")]
pub use noop::{
    counter, gauge, histogram, remove_prefix, snapshot, Counter, Gauge, Histogram, SpanGuard,
    Stopwatch,
};

pub mod log;
pub mod snapshot;

pub use log::{level_enabled, Level, RateLimit};
pub use snapshot::{HistogramSnapshot, Snapshot, BUCKET_BOUNDS_US, N_BUCKETS};

/// The `&'static Counter` registered under a literal name, resolved once
/// per call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// The `&'static Gauge` registered under a literal name, resolved once per
/// call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::gauge($name))
    }};
}

/// The `&'static Histogram` registered under a literal name, resolved once
/// per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::histogram($name))
    }};
}

/// A scoped timer: records elapsed µs into the named histogram when the
/// returned guard drops. Bind it (`let _guard = span!(...)`) — an
/// unbound `_ = span!` drops immediately and times nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        $crate::SpanGuard::new($crate::histogram!($name).clone())
    }};
}

/// Leveled, rate-limited log line (at most 10 per 10 s per call site, with
/// a suppression count when the window reopens). Prefer the
/// [`obs_error!`]/[`obs_warn!`]/[`obs_info!`]/[`obs_debug!`] wrappers.
#[macro_export]
macro_rules! obs_log {
    ($level:expr, $target:expr, $($arg:tt)*) => {{
        if $crate::level_enabled($level) {
            static RL: $crate::RateLimit = $crate::RateLimit::new(10);
            if let Some(suppressed) = RL.admit() {
                $crate::log::emit($level, $target, format_args!($($arg)*), suppressed);
            }
        }
    }};
}

/// [`obs_log!`] at [`Level::Error`].
#[macro_export]
macro_rules! obs_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::obs_log!($crate::Level::Error, $target, $($arg)*)
    };
}

/// [`obs_log!`] at [`Level::Warn`].
#[macro_export]
macro_rules! obs_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::obs_log!($crate::Level::Warn, $target, $($arg)*)
    };
}

/// [`obs_log!`] at [`Level::Info`].
#[macro_export]
macro_rules! obs_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::obs_log!($crate::Level::Info, $target, $($arg)*)
    };
}

/// [`obs_log!`] at [`Level::Debug`].
#[macro_export]
macro_rules! obs_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::obs_log!($crate::Level::Debug, $target, $($arg)*)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_expand_and_share_per_site_handles() {
        let c = counter!("test.lib.macro_counter");
        c.inc();
        c.inc();
        gauge!("test.lib.macro_gauge").set(4.0);
        {
            let _g = span!("test.lib.macro_span_us");
        }
        let snap = crate::snapshot();
        #[cfg(not(feature = "off"))]
        {
            assert_eq!(snap.counter("test.lib.macro_counter"), 2);
            assert_eq!(snap.gauge("test.lib.macro_gauge"), 4.0);
            assert_eq!(snap.histogram("test.lib.macro_span_us").count(), 1);
        }
        #[cfg(feature = "off")]
        assert!(snap.is_empty());
    }

    #[test]
    fn log_macros_compile_at_every_level() {
        obs_error!("test.lib", "error {}", 1);
        obs_warn!("test.lib", "warn");
        obs_info!("test.lib", "info");
        obs_debug!("test.lib", "debug");
    }
}
