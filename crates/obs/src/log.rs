//! Leveled, rate-limited structured logging to stderr.
//!
//! The level is read once per process from `CP_LOG`
//! (`error|warn|info|debug`, default `warn`); every emission site carries a
//! [`RateLimit`] so a flapping client can't turn the server's stderr into
//! its own denial of service. This module stays fully real under the `off`
//! feature — compiling metrics out must not silence operational errors.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, ordered so `Error < Warn < Info < Debug`: a configured
/// level admits every message at or below it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting conditions.
    Error = 0,
    /// Degraded-but-continuing conditions (dropped connections, rejections).
    Warn = 1,
    /// Lifecycle events (listen address, session opens).
    Info = 2,
    /// Per-request detail.
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

fn configured_level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        std::env::var("CP_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Warn)
    })
}

/// `true` iff messages at `level` would be emitted — lets call sites skip
/// formatting entirely.
pub fn level_enabled(level: Level) -> bool {
    level <= configured_level()
}

/// Seconds (with µs precision) since the process first touched the logger;
/// the timestamp in every line.
fn uptime_secs() -> f64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// A per-call-site token bucket: at most `max_per_window` emissions per
/// 10-second window, with the count of suppressed messages reported when
/// the next window opens. `const`-constructible so `obs_warn!` can embed
/// one in a `static` at each expansion site.
pub struct RateLimit {
    max_per_window: u32,
    window_start_us: AtomicU64,
    emitted: AtomicU32,
    suppressed: AtomicU32,
}

/// Rate-limit window width.
const WINDOW_US: u64 = 10_000_000;

impl RateLimit {
    /// A limiter admitting `max_per_window` messages per 10 s window.
    pub const fn new(max_per_window: u32) -> Self {
        RateLimit {
            max_per_window,
            window_start_us: AtomicU64::new(0),
            emitted: AtomicU32::new(0),
            suppressed: AtomicU32::new(0),
        }
    }

    /// Whether this message may be emitted; `Some(suppressed)` carries how
    /// many were dropped since the caller last got through (usually 0).
    /// Windows are checked optimistically — a race can at worst let one
    /// extra message through, which is fine for a log limiter.
    pub fn admit(&self) -> Option<u32> {
        let now_us = (uptime_secs() * 1e6) as u64;
        let start = self.window_start_us.load(Ordering::Relaxed);
        if (now_us.saturating_sub(start) >= WINDOW_US || start > now_us)
            && self
                .window_start_us
                .compare_exchange(start, now_us, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.emitted.store(0, Ordering::Relaxed);
        }
        if self.emitted.fetch_add(1, Ordering::Relaxed) < self.max_per_window {
            Some(self.suppressed.swap(0, Ordering::Relaxed))
        } else {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Write one formatted line to stderr:
/// `[cp +1.234s warn rpc.server] message (suppressed 3)`.
/// Call sites reach this through the `obs_warn!`-family macros, which
/// handle the level check and rate limiting.
pub fn emit(level: Level, target: &str, msg: std::fmt::Arguments<'_>, suppressed: u32) {
    let tail = if suppressed > 0 {
        format!(" (suppressed {suppressed})")
    } else {
        String::new()
    };
    eprintln!(
        "[cp +{:.3}s {} {}] {}{}",
        uptime_secs(),
        level.as_str(),
        target,
        msg,
        tail
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_from_error_to_debug() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("nonsense"), None);
    }

    #[test]
    fn rate_limit_admits_up_to_cap_then_counts_suppressions() {
        let rl = RateLimit::new(3);
        assert_eq!(rl.admit(), Some(0));
        assert_eq!(rl.admit(), Some(0));
        assert_eq!(rl.admit(), Some(0));
        assert_eq!(rl.admit(), None);
        assert_eq!(rl.admit(), None);
        // Force the window to look expired; the next admit resets and
        // reports the two suppressed messages.
        rl.window_start_us.store(0, Ordering::Relaxed);
        let now = (uptime_secs() * 1e6) as u64;
        rl.window_start_us
            .store(now.wrapping_sub(WINDOW_US + 1), Ordering::Relaxed);
        assert_eq!(rl.admit(), Some(2));
    }
}
