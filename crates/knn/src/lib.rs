//! K-nearest-neighbor classifier substrate.
//!
//! The certain-prediction algorithms of `cp-core` reason about the *structure*
//! of a KNN classifier (who is in the top-K set, how labels are tallied). This
//! crate owns that structure for the complete-data case:
//!
//! * [`kernel::Kernel`] — similarity kernels (§3 of the paper: "this
//!   similarity can be calculated using different kernel functions κ such as
//!   linear kernel, RBF kernel, etc."),
//! * [`topk`] — deterministic top-K selection under the paper's no-ties
//!   assumption, realized as a strict total order on `(similarity, index)`,
//! * [`vote`] — label tallies and majority vote with deterministic tie-break,
//! * [`classifier::KnnClassifier`] — a textbook KNN classifier over complete
//!   training data, used as the downstream model in every cleaning experiment.
//!
//! Determinism is load-bearing: the CP algorithms and the brute-force
//! reference must order candidates identically or the possible-world
//! semantics would diverge between implementations.

pub mod classifier;
pub mod kernel;
pub mod topk;
pub mod vote;

pub use classifier::{FittedKnn, KnnClassifier};
pub use kernel::Kernel;
pub use topk::top_k_indices;
pub use vote::{tally_labels, vote_winner};

/// A class label, `0 .. n_labels`.
pub type Label = usize;
