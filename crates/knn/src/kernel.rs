//! Similarity kernels.
//!
//! A kernel maps a pair of feature vectors to a similarity score: *larger is
//! more similar*. Distances are negated so that every kernel agrees on that
//! convention. The paper's experiments use Euclidean distance (§5.1: "use
//! Euclidean distance as the similarity function"); linear and RBF kernels
//! are mentioned in §3 and provided for completeness.

/// A similarity kernel. Larger similarity = closer / more alike.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Kernel {
    /// Negative squared Euclidean distance: `-Σ (a_i - b_i)²`.
    ///
    /// Monotone-equivalent to negative Euclidean distance (it induces the
    /// same neighbor ordering) while avoiding the square root.
    NegEuclidean,
    /// Negative Manhattan (L1) distance: `-Σ |a_i - b_i|`.
    NegManhattan,
    /// Linear kernel (dot product): `Σ a_i · b_i`.
    Linear,
    /// Gaussian RBF kernel: `exp(-γ · Σ (a_i - b_i)²)`.
    Rbf {
        /// Bandwidth parameter γ > 0.
        gamma: f64,
    },
    /// Cosine similarity: `a·b / (‖a‖·‖b‖)`; defined as 0 if either vector
    /// has zero norm.
    Cosine,
}

impl Kernel {
    /// Similarity between two equal-length feature vectors.
    ///
    /// # Panics
    /// Debug-panics if the vectors differ in length. NaN inputs are rejected
    /// at dataset construction time (see `cp-core`), so outputs are always
    /// comparable.
    pub fn similarity(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "kernel inputs must have equal dimension");
        match self {
            Kernel::NegEuclidean => -sq_euclidean(a, b),
            Kernel::NegManhattan => -a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>(),
            Kernel::Linear => dot(a, b),
            Kernel::Rbf { gamma } => (-gamma * sq_euclidean(a, b)).exp(),
            Kernel::Cosine => {
                let na = dot(a, a).sqrt();
                let nb = dot(b, b).sqrt();
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    dot(a, b) / (na * nb)
                }
            }
        }
    }
}

impl Default for Kernel {
    /// The paper's experimental default (Euclidean-distance similarity).
    fn default() -> Self {
        Kernel::NegEuclidean
    }
}

#[inline]
fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_points_are_maximally_similar_under_distances() {
        let p = [1.0, -2.0, 3.5];
        assert_eq!(Kernel::NegEuclidean.similarity(&p, &p), 0.0);
        assert_eq!(Kernel::NegManhattan.similarity(&p, &p), 0.0);
        assert_eq!(Kernel::Rbf { gamma: 0.7 }.similarity(&p, &p), 1.0);
    }

    #[test]
    fn neg_euclidean_known_value() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(Kernel::NegEuclidean.similarity(&a, &b), -25.0);
        assert_eq!(Kernel::NegManhattan.similarity(&a, &b), -7.0);
    }

    #[test]
    fn linear_kernel_is_dot_product() {
        assert_eq!(Kernel::Linear.similarity(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn cosine_parallel_and_orthogonal() {
        let k = Kernel::Cosine;
        assert!((k.similarity(&[1.0, 0.0], &[5.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(k.similarity(&[1.0, 0.0], &[0.0, 3.0]).abs() < 1e-12);
        assert!((k.similarity(&[1.0, 0.0], &[-2.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_defined() {
        assert_eq!(Kernel::Cosine.similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn rbf_decays_with_distance() {
        let k = Kernel::Rbf { gamma: 1.0 };
        let near = k.similarity(&[0.0], &[0.1]);
        let far = k.similarity(&[0.0], &[2.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    proptest! {
        #[test]
        fn distance_kernels_are_symmetric(
            a in proptest::collection::vec(-100.0f64..100.0, 3),
            b in proptest::collection::vec(-100.0f64..100.0, 3),
        ) {
            for k in [Kernel::NegEuclidean, Kernel::NegManhattan, Kernel::Linear,
                      Kernel::Rbf { gamma: 0.5 }, Kernel::Cosine] {
                let ab = k.similarity(&a, &b);
                let ba = k.similarity(&b, &a);
                prop_assert!((ab - ba).abs() <= 1e-9 * ab.abs().max(1.0));
            }
        }

        #[test]
        fn self_similarity_dominates_for_metric_kernels(
            a in proptest::collection::vec(-100.0f64..100.0, 3),
            b in proptest::collection::vec(-100.0f64..100.0, 3),
        ) {
            for k in [Kernel::NegEuclidean, Kernel::NegManhattan, Kernel::Rbf { gamma: 0.5 }] {
                prop_assert!(k.similarity(&a, &a) >= k.similarity(&a, &b));
            }
        }
    }
}
