//! Deterministic top-K selection.
//!
//! The paper assumes "there are no ties in these similarity scores (we can
//! always break a tie by favoring a smaller i and j)". We realize that
//! assumption as a strict total order on `(similarity, index)` pairs:
//! similarity compared by [`f64::total_cmp`], and — between equal
//! similarities — the *larger* index is treated as more similar. The chosen
//! direction is arbitrary but must be (and is) identical across every
//! algorithm in the workspace, including brute-force possible-world
//! enumeration in `cp-core`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Strict total order on `(similarity, index)`: returns the ordering of `a`
/// relative to `b` where `Greater` means *more similar*.
#[inline]
pub fn cmp_sim(a: (f64, usize), b: (f64, usize)) -> Ordering {
    match a.0.total_cmp(&b.0) {
        Ordering::Equal => a.1.cmp(&b.1),
        ord => ord,
    }
}

/// Indices of the `k` most similar entries, ordered from most to least
/// similar.
///
/// If `k >= sims.len()`, all indices are returned (still ordered). Runs in
/// `O(N log K)` using a bounded min-heap, matching the cost model the paper
/// assumes for the MM algorithm's `argmax_k` step.
pub fn top_k_indices(sims: &[f64], k: usize) -> Vec<usize> {
    if k == 0 || sims.is_empty() {
        return Vec::new();
    }
    // Min-heap of the current best k, keyed so the *least* similar of the
    // kept set is at the top.
    struct Entry(f64, usize);
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            cmp_sim((self.0, self.1), (other.0, other.1)) == Ordering::Equal
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // reversed: BinaryHeap is a max-heap, we want the least similar on top
            cmp_sim((other.0, other.1), (self.0, self.1))
        }
    }

    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
    for (i, &s) in sims.iter().enumerate() {
        if heap.len() < k {
            heap.push(Entry(s, i));
        } else if let Some(worst) = heap.peek() {
            if cmp_sim((s, i), (worst.0, worst.1)) == Ordering::Greater {
                heap.pop();
                heap.push(Entry(s, i));
            }
        }
    }
    let mut picked: Vec<(f64, usize)> = heap.into_iter().map(|e| (e.0, e.1)).collect();
    picked.sort_by(|a, b| cmp_sim(*b, *a));
    picked.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn selects_largest() {
        let sims = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&sims, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&sims, 1), vec![1]);
    }

    #[test]
    fn k_zero_and_empty() {
        assert!(top_k_indices(&[1.0, 2.0], 0).is_empty());
        assert!(top_k_indices(&[], 3).is_empty());
    }

    #[test]
    fn k_larger_than_input_returns_all_sorted() {
        let sims = [0.3, 0.1, 0.2];
        assert_eq!(top_k_indices(&sims, 10), vec![0, 2, 1]);
    }

    #[test]
    fn ties_favor_larger_index_as_more_similar() {
        let sims = [0.5, 0.5, 0.5];
        assert_eq!(top_k_indices(&sims, 2), vec![2, 1]);
        assert_eq!(top_k_indices(&sims, 3), vec![2, 1, 0]);
    }

    #[test]
    fn cmp_sim_is_strict_total_order_on_distinct_indices() {
        assert_eq!(cmp_sim((1.0, 0), (1.0, 1)), Ordering::Less);
        assert_eq!(cmp_sim((2.0, 0), (1.0, 1)), Ordering::Greater);
        assert_eq!(cmp_sim((1.0, 5), (1.0, 5)), Ordering::Equal);
    }

    #[test]
    fn negative_and_signed_zero_similarities_ordered_totally() {
        // total_cmp puts -0.0 < +0.0; the ordering must stay strict
        let sims = [-0.0, 0.0, -1.0];
        assert_eq!(top_k_indices(&sims, 3), vec![1, 0, 2]);
    }

    proptest! {
        #[test]
        fn matches_naive_sort(sims in proptest::collection::vec(-100.0f64..100.0, 0..40), k in 0usize..10) {
            let fast = top_k_indices(&sims, k);
            let mut idx: Vec<usize> = (0..sims.len()).collect();
            idx.sort_by(|&a, &b| cmp_sim((sims[b], b), (sims[a], a)));
            idx.truncate(k);
            prop_assert_eq!(fast, idx);
        }
    }
}
