//! Label tallies and majority voting.
//!
//! Given the labels of the top-K set, the classifier predicts the label with
//! the largest tally (the paper's `γ` vector, §3.1.1). Vote ties are broken
//! deterministically toward the smaller label — the same rule is applied by
//! every CP algorithm, including the tally-vector `argmax` inside SortScan.

use crate::Label;

/// Count how many of `labels` equal each class in `0..n_labels`.
///
/// # Panics
/// Panics if any label is `>= n_labels`.
pub fn tally_labels(labels: impl IntoIterator<Item = Label>, n_labels: usize) -> Vec<u32> {
    let mut tally = vec![0u32; n_labels];
    for l in labels {
        assert!(
            l < n_labels,
            "label {l} out of range (n_labels = {n_labels})"
        );
        tally[l] += 1;
    }
    tally
}

/// Winning label of a tally: `argmax`, ties broken toward the smaller label.
///
/// # Panics
/// Panics on an empty tally.
pub fn vote_winner(tally: &[u32]) -> Label {
    assert!(!tally.is_empty(), "vote over zero classes");
    let mut best = 0usize;
    for (l, &count) in tally.iter().enumerate().skip(1) {
        if count > tally[best] {
            best = l;
        }
    }
    best
}

/// Convenience: tally then vote in one step.
pub fn majority_label(labels: impl IntoIterator<Item = Label>, n_labels: usize) -> Label {
    vote_winner(&tally_labels(labels, n_labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tally_counts() {
        assert_eq!(tally_labels([0, 1, 1, 2, 1], 3), vec![1, 3, 1]);
        assert_eq!(tally_labels([], 2), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tally_rejects_out_of_range() {
        tally_labels([5], 2);
    }

    #[test]
    fn winner_majority() {
        assert_eq!(vote_winner(&[1, 3, 1]), 1);
        assert_eq!(vote_winner(&[4, 3]), 0);
    }

    #[test]
    fn winner_tie_breaks_low() {
        assert_eq!(vote_winner(&[2, 2]), 0);
        assert_eq!(vote_winner(&[0, 3, 3]), 1);
        assert_eq!(vote_winner(&[0, 0, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "zero classes")]
    fn winner_rejects_empty() {
        vote_winner(&[]);
    }

    #[test]
    fn majority_label_composes() {
        assert_eq!(majority_label([1, 1, 0], 2), 1);
        assert_eq!(majority_label([0, 1], 2), 0); // tie -> low
    }

    proptest! {
        #[test]
        fn winner_is_argmax(tally in proptest::collection::vec(0u32..20, 1..6)) {
            let w = vote_winner(&tally);
            let max = *tally.iter().max().unwrap();
            prop_assert_eq!(tally[w], max);
            // tie-break: no smaller label has the same count
            for &count in &tally[..w] {
                prop_assert!(count < max);
            }
        }
    }
}
