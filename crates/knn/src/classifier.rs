//! A textbook KNN classifier over complete training data.
//!
//! This is the downstream model `A` of every experiment in the paper (§5.1:
//! "We use a KNN classifier with K=3 and use Euclidean distance as the
//! similarity function"). Training is lazy (KNN memorizes the data);
//! prediction computes similarities, selects the top-K under the workspace's
//! deterministic total order, and majority-votes.

use crate::kernel::Kernel;
use crate::topk::top_k_indices;
use crate::vote::majority_label;
use crate::Label;

/// KNN classifier configuration.
#[derive(Clone, Copy, Debug)]
pub struct KnnClassifier {
    /// Number of neighbors (the paper's experiments use `k = 3`).
    pub k: usize,
    /// Similarity kernel.
    pub kernel: Kernel,
}

impl KnnClassifier {
    /// New classifier with the given `k` and the default (Euclidean) kernel.
    pub fn new(k: usize) -> Self {
        KnnClassifier {
            k,
            kernel: Kernel::default(),
        }
    }

    /// New classifier with an explicit kernel.
    pub fn with_kernel(k: usize, kernel: Kernel) -> Self {
        KnnClassifier { k, kernel }
    }

    /// Memorize the training data.
    ///
    /// # Panics
    /// Panics if the training set is empty, if `k == 0`, if feature vectors
    /// have inconsistent dimensions, if any feature is non-finite, or if any
    /// label is `>= n_labels`.
    pub fn fit(&self, train_x: Vec<Vec<f64>>, train_y: Vec<Label>, n_labels: usize) -> FittedKnn {
        assert!(self.k > 0, "k must be positive");
        assert!(!train_x.is_empty(), "empty training set");
        assert_eq!(
            train_x.len(),
            train_y.len(),
            "feature/label length mismatch"
        );
        assert!(n_labels > 0, "need at least one class");
        let dim = train_x[0].len();
        for (i, x) in train_x.iter().enumerate() {
            assert_eq!(x.len(), dim, "inconsistent feature dimension at row {i}");
            assert!(
                x.iter().all(|v| v.is_finite()),
                "non-finite feature at row {i}"
            );
        }
        for (i, &y) in train_y.iter().enumerate() {
            assert!(y < n_labels, "label out of range at row {i}");
        }
        FittedKnn {
            config: *self,
            train_x,
            train_y,
            n_labels,
        }
    }
}

/// A fitted KNN classifier (memorized training set).
#[derive(Clone, Debug)]
pub struct FittedKnn {
    config: KnnClassifier,
    train_x: Vec<Vec<f64>>,
    train_y: Vec<Label>,
    n_labels: usize,
}

impl FittedKnn {
    /// Number of training examples.
    pub fn len(&self) -> usize {
        self.train_x.len()
    }

    /// Whether the training set is empty (never true for a fitted model).
    pub fn is_empty(&self) -> bool {
        self.train_x.is_empty()
    }

    /// Number of classes.
    pub fn n_labels(&self) -> usize {
        self.n_labels
    }

    /// Indices of the top-K training examples for a test point.
    pub fn neighbors(&self, t: &[f64]) -> Vec<usize> {
        let sims: Vec<f64> = self
            .train_x
            .iter()
            .map(|x| self.config.kernel.similarity(x, t))
            .collect();
        top_k_indices(&sims, self.config.k)
    }

    /// Predicted label for a test point.
    pub fn predict(&self, t: &[f64]) -> Label {
        let neighbors = self.neighbors(t);
        majority_label(
            neighbors.into_iter().map(|i| self.train_y[i]),
            self.n_labels,
        )
    }

    /// Predictions for a batch of test points.
    pub fn predict_batch(&self, tests: &[Vec<f64>]) -> Vec<Label> {
        tests.iter().map(|t| self.predict(t)).collect()
    }

    /// Fraction of test points whose prediction matches the given labels.
    ///
    /// # Panics
    /// Panics if the lengths differ or the test set is empty.
    pub fn accuracy(&self, tests: &[Vec<f64>], labels: &[Label]) -> f64 {
        assert_eq!(tests.len(), labels.len(), "test feature/label mismatch");
        assert!(!tests.is_empty(), "empty test set");
        let correct = tests
            .iter()
            .zip(labels)
            .filter(|(t, &y)| self.predict(t) == y)
            .count();
        correct as f64 / tests.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_data() -> (Vec<Vec<f64>>, Vec<Label>) {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.1],
            vec![0.2, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 4.9],
            vec![4.9, 5.2],
        ];
        let ys = vec![0, 0, 0, 1, 1, 1];
        (xs, ys)
    }

    #[test]
    fn classifies_clusters() {
        let (xs, ys) = two_cluster_data();
        let model = KnnClassifier::new(3).fit(xs, ys, 2);
        assert_eq!(model.predict(&[0.05, 0.05]), 0);
        assert_eq!(model.predict(&[5.05, 5.0]), 1);
    }

    #[test]
    fn k1_returns_nearest_label() {
        let (xs, ys) = two_cluster_data();
        let model = KnnClassifier::new(1).fit(xs, ys, 2);
        assert_eq!(model.predict(&[4.0, 4.0]), 1);
        assert_eq!(model.predict(&[1.0, 1.0]), 0);
    }

    #[test]
    fn perfect_accuracy_on_train() {
        let (xs, ys) = two_cluster_data();
        let model = KnnClassifier::new(1).fit(xs.clone(), ys.clone(), 2);
        assert_eq!(model.accuracy(&xs, &ys), 1.0);
    }

    #[test]
    fn k_exceeding_train_size_votes_over_all() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![1, 1, 0];
        let model = KnnClassifier::new(10).fit(xs, ys, 2);
        // all three vote: 2x label 1, 1x label 0
        assert_eq!(model.predict(&[0.5]), 1);
    }

    #[test]
    fn neighbors_ordered_most_similar_first() {
        let xs = vec![vec![0.0], vec![1.0], vec![10.0]];
        let ys = vec![0, 0, 1];
        let model = KnnClassifier::new(2).fit(xs, ys, 2);
        assert_eq!(model.neighbors(&[0.2]), vec![0, 1]);
        assert_eq!(model.neighbors(&[9.0]), vec![2, 1]);
    }

    #[test]
    fn rbf_kernel_also_classifies() {
        let (xs, ys) = two_cluster_data();
        let model = KnnClassifier::with_kernel(3, Kernel::Rbf { gamma: 0.5 }).fit(xs, ys, 2);
        assert_eq!(model.predict(&[0.0, 0.1]), 0);
        assert_eq!(model.predict(&[5.0, 5.1]), 1);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_train() {
        KnnClassifier::new(3).fit(Vec::new(), Vec::new(), 2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_k_zero() {
        KnnClassifier::new(0).fit(vec![vec![0.0]], vec![0], 1);
    }

    #[test]
    #[should_panic(expected = "non-finite feature")]
    fn rejects_nan_features() {
        KnnClassifier::new(1).fit(vec![vec![f64::NAN]], vec![0], 1);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_label() {
        KnnClassifier::new(1).fit(vec![vec![0.0]], vec![7], 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature dimension")]
    fn rejects_ragged_features() {
        KnnClassifier::new(1).fit(vec![vec![0.0], vec![0.0, 1.0]], vec![0, 0], 1);
    }
}
