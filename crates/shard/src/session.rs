//! Sharded cleaning sessions: the same stateful engine as
//! [`CleaningSession`], scaled across dataset partitions.
//!
//! A [`ShardedSession`] partitions the cleaning problem's incomplete
//! dataset into contiguous row-range shards and owns **one
//! [`CleaningSession`] per shard**, each over its shard-local sub-problem:
//! the shard session builds its partition-local `ValIndexCache` exactly
//! once per run (the build-counter test pins this at
//! `n_shards × |val|` index builds total) and maintains the shard's slice
//! of the global pin mask as rows get cleaned. What crosses shard
//! boundaries is only what the factor-merge algebra needs: per-label
//! [`cp_core::ShardFactors`] summaries during merged scans, global row ids
//! for pin routing, and the coordinator's CP status bitvector.
//!
//! The coordinator (this type) mirrors the single-process session's public
//! surface — [`ShardedSession::step`] / [`ShardedSession::status`] /
//! [`ShardedSession::run_to_convergence`] / [`ShardedSession::run_order`] —
//! and recomputes global certainty by merging shard factors (the
//! [`crate::scan`] protocol). Greedy selection is routed to the owning
//! shard: pinning a candidate of row `r` touches exactly one shard's local
//! pin mask, and every other shard's factor stream is reused as-is. Shard
//! evaluation fans out on the scoped-thread pool and honours the same
//! `CP_THREADS` cap as the rest of the workspace (via
//! [`RunOptions::n_threads`]).
//!
//! Status answers take the same dispatch as the single-process session:
//! binary label spaces go through the rank-merged MM extreme-summary fast
//! path (no tally trees, no boundary-event stream), everything else through
//! the exact `Possibility`-semiring merged scan — either way the sharded
//! session's status vector is **identically equal** to the single
//! session's for every shard count — the shard-count-invariance property
//! tests assert this, along with greedy-selection and `run_order`
//! equivalence.

use crate::scan::{certain_label_sharded_with_indexes, q2_probabilities_sharded_with_indexes};
use cp_clean::eval::parallel_map;
use cp_clean::metrics::CleaningRun;
use cp_clean::{
    pick_min_expected_entropy, select_next_incremental, CleaningEngine, CleaningProblem,
    CleaningSession, CleaningState, RunOptions, SelectionBackend, SelectionCache,
};
use cp_core::{DatasetShard, Pins, SimilarityIndex};
use cp_knn::Label;
use cp_numeric::stats::entropy_bits;
use std::convert::Infallible;
use std::sync::{Arc, Mutex};

/// A cleaning run distributed over dataset shards: one shard-local
/// [`CleaningSession`] per partition plus the coordinator's global cleaning
/// state and incrementally maintained CP status.
#[derive(Debug)]
pub struct ShardedSession {
    problem: Arc<CleaningProblem>,
    opts: RunOptions,
    shards: Vec<DatasetShard>,
    sessions: Vec<CleaningSession>,
    /// `owner[row]` = index of the shard owning a global row.
    owner: Vec<usize>,
    state: CleaningState,
    cp: Vec<bool>,
    /// Incremental selection state over *global* row ids
    /// ([`cp_clean::selection`]); a mutex because status refreshes fan
    /// `&self` across scoped threads.
    sel: Mutex<SelectionCache>,
}

impl Clone for ShardedSession {
    fn clone(&self) -> Self {
        ShardedSession {
            problem: Arc::clone(&self.problem),
            opts: self.opts.clone(),
            shards: self.shards.clone(),
            sessions: self.sessions.clone(),
            owner: self.owner.clone(),
            state: self.state.clone(),
            cp: self.cp.clone(),
            sel: Mutex::new(self.lock_sel().clone()),
        }
    }
}

impl ShardedSession {
    /// Open a sharded session: partition the dataset into (at most)
    /// `n_shards` row ranges, open one shard-local [`CleaningSession`] per
    /// partition (shards build their partition-local indexes concurrently,
    /// splitting the thread budget), and evaluate the initial global CP
    /// status by factor-merged scans.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero or the problem does not validate.
    pub fn new(problem: &CleaningProblem, n_shards: usize, opts: &RunOptions) -> Self {
        problem.validate();
        let problem = Arc::new(problem.clone());
        let shards = problem.dataset.partition(n_shards);
        let mut owner = vec![0usize; problem.dataset.len()];
        for (s, sh) in shards.iter().enumerate() {
            for row in sh.rows() {
                owner[row] = s;
            }
        }
        // one sub-problem per shard: the shard's rows (locally indexed), the
        // full validation set (shared — `val_x` is one Arc'd allocation
        // across the session and every shard sub-problem), and the matching
        // slices of the simulated human's choices
        let shard_problems: Vec<Arc<CleaningProblem>> = shards
            .iter()
            .map(|sh| {
                Arc::new(CleaningProblem {
                    dataset: sh.dataset().clone(),
                    config: problem.config,
                    val_x: problem.val_x.clone(),
                    truth_choice: problem.truth_choice[sh.rows()].to_vec(),
                    default_choice: problem.default_choice[sh.rows()].to_vec(),
                })
            })
            .collect();
        // fan shard-session construction out across shards, splitting the
        // thread budget between the shard level and each session's own
        // per-validation-point index builds; deferred = no shard-local CP
        // evaluation (global certainty is the coordinator's job)
        let outer = opts.n_threads.min(shards.len()).max(1);
        let inner_opts = RunOptions {
            n_threads: (opts.n_threads / outer).max(1),
            ..opts.clone()
        };
        let sessions = parallel_map(shards.len(), outer, |s| {
            CleaningSession::from_arc_deferred(Arc::clone(&shard_problems[s]), &inner_opts)
        });
        let state = CleaningState::new(&problem);
        let cp = vec![false; problem.val_x.len()];
        let sel = Mutex::new(SelectionCache::new(
            problem.dataset.len(),
            problem.val_x.len(),
        ));
        let mut session = ShardedSession {
            problem,
            opts: opts.clone(),
            shards,
            sessions,
            owner,
            state,
            cp,
            sel,
        };
        session.refresh_status();
        session
    }

    /// The selection cache, recovering from a poisoned lock (no partial
    /// writes can break it: mutations are append-only or whole-state
    /// replacements).
    fn lock_sel(&self) -> std::sync::MutexGuard<'_, SelectionCache> {
        self.sel.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The (global) problem this session cleans.
    pub fn problem(&self) -> &CleaningProblem {
        &self.problem
    }

    /// Number of shards the dataset was partitioned into.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The dataset partition.
    pub fn shards(&self) -> &[DatasetShard] {
        &self.shards
    }

    /// The shard-local cleaning sessions, aligned with [`Self::shards`].
    ///
    /// These sessions carry each shard's pin mask and partition-local index
    /// cache; their own `status()` is never evaluated (certainty over a
    /// sub-dataset is not meaningful globally — ask [`Self::status`] or
    /// [`Self::certain_label_at`] instead).
    pub fn shard_sessions(&self) -> &[CleaningSession] {
        &self.sessions
    }

    /// The shard owning a global row.
    pub fn owner_of(&self, row: usize) -> usize {
        self.owner[row]
    }

    /// The global cleaning progress so far.
    pub fn state(&self) -> &CleaningState {
        &self.state
    }

    /// Per-validation-point global CP status under the current pins
    /// (`true` = certainly predicted), maintained incrementally by
    /// factor-merged scans.
    pub fn status(&self) -> &[bool] {
        &self.cp
    }

    /// Number of validation points currently certainly predicted.
    pub fn n_certain(&self) -> usize {
        self.cp.iter().filter(|&&c| c).count()
    }

    /// `true` iff every validation point is certainly predicted.
    pub fn converged(&self) -> bool {
        self.cp.iter().all(|&c| c)
    }

    /// Rows cleaned so far.
    pub fn n_cleaned(&self) -> usize {
        self.state.n_cleaned()
    }

    /// Dirty rows not yet cleaned (global row ids).
    pub fn remaining(&self) -> Vec<usize> {
        self.state.remaining(&self.problem)
    }

    /// The certainly-predicted label of validation point `v` (if any) under
    /// the current pins, by a factor-merged scan over the shard sessions'
    /// cached indexes.
    pub fn certain_label_at(&self, v: usize) -> Option<Label> {
        let indexes: Vec<&SimilarityIndex> = self.sessions.iter().map(|s| &*s.cache()[v]).collect();
        let pins: Vec<&Pins> = self.sessions.iter().map(|s| s.state().pins()).collect();
        certain_label_sharded_with_indexes(&self.shards, &indexes, &pins, &self.problem.config)
    }

    /// Re-evaluate the not-yet-certain validation points (certainty is
    /// monotone under cleaning, exactly as in the single-process session),
    /// fanning the merged scans out over the thread budget.
    fn refresh_status(&mut self) {
        let uncertain: Vec<usize> = (0..self.cp.len()).filter(|&v| !self.cp[v]).collect();
        if uncertain.is_empty() {
            return;
        }
        let fresh = {
            let this = &*self;
            parallel_map(uncertain.len(), this.opts.n_threads, |u| {
                this.certain_label_at(uncertain[u]).is_some()
            })
        };
        for (&v, now_certain) in uncertain.iter().zip(fresh) {
            self.cp[v] = now_certain;
        }
    }

    /// Clean one externally chosen global row: route the pin to the owning
    /// shard's session (pin-only — global certainty is the coordinator's
    /// job, so the shard session skips its own local status refresh), then
    /// refresh the global CP status by factor-merged scans.
    ///
    /// # Panics
    /// Panics if the row is clean or already cleaned.
    pub fn clean(&mut self, row: usize) {
        self.state.clean_row(&self.problem, row);
        let s = self.owner[row];
        let local = self.shards[s].local_row(row).expect("owner map is exact");
        self.sessions[s].clean_pin_only(local);
        self.refresh_status();
    }

    /// The greedy CPClean selection over the given candidate rows —
    /// incremental: scores are cached across steps in an epoch-keyed
    /// [`SelectionCache`] over *global* rows, and rows the cached entropy
    /// bounds exclude are never rescored (see [`cp_clean::selection`]).
    /// Hypothetical scans still route to the owning shard only. Selects the
    /// identical row as [`ShardedSession::select_next_naive`].
    pub fn select_next(&self, remaining: &[usize]) -> usize {
        let mut backend = ShardedBackend { session: self };
        let result = select_next_incremental(
            &self.problem,
            self.state.pins(),
            &self.cp,
            remaining,
            &mut self.lock_sel(),
            &mut backend,
        );
        match result {
            Ok(row) => row,
        }
    }

    /// The from-scratch sharded greedy selection, routed to the owning
    /// shards: evaluating a pin on row `r` modifies only the owner's local
    /// pin mask, and every other shard's factors are merged unchanged.
    /// Scoring is [`pick_min_expected_entropy`] — the *same code*
    /// [`CleaningSession::select_next_naive`] scores with, so the rule
    /// cannot diverge between engines. This is the reference scorer
    /// [`ShardedSession::select_next`] must match row for row; kept callable
    /// for the lockstep equivalence tests and benchmarks.
    pub fn select_next_naive(&self, remaining: &[usize]) -> usize {
        debug_assert!(!remaining.is_empty());
        let uncertain: Vec<usize> = (0..self.cp.len()).filter(|&v| !self.cp[v]).collect();
        if uncertain.is_empty() {
            return remaining[0];
        }

        let per_val: Vec<Vec<Vec<f64>>> = parallel_map(uncertain.len(), self.opts.n_threads, |u| {
            let v = uncertain[u];
            let indexes: Vec<&SimilarityIndex> =
                self.sessions.iter().map(|s| &*s.cache()[v]).collect();
            // one clone of each shard's mask per worker; candidate pins are
            // applied and reverted in place (the `with_pin` discipline,
            // across shard masks)
            let mut masks: Vec<Pins> = self
                .sessions
                .iter()
                .map(|s| s.state().pins().clone())
                .collect();
            remaining
                .iter()
                .map(|&row| {
                    let s = self.owner[row];
                    let local = self.shards[s].local_row(row).expect("owner map is exact");
                    (0..self.problem.dataset.set_size(row))
                        .map(|j| {
                            masks[s].pin(local, j);
                            let probs = q2_probabilities_sharded_with_indexes(
                                &self.shards,
                                &indexes,
                                &masks,
                                &self.problem.config,
                            );
                            // candidate rows are uncleaned, so restoring
                            // means unpinning
                            masks[s].unpin(local);
                            entropy_bits(&probs)
                        })
                        .collect()
                })
                .collect()
        });

        pick_min_expected_entropy(&self.problem, remaining, &per_val)
    }

    /// One greedy CPClean iteration (sharded) — [`CleaningEngine::step`],
    /// same contract as [`CleaningSession::step`].
    pub fn step(&mut self) -> Option<usize> {
        CleaningEngine::step(self)
    }

    /// Greedy run with curve recording —
    /// [`CleaningEngine::run_to_convergence`]. The run loop (budget,
    /// recording cadence, termination) is the *same code* the single-process
    /// session drives, so sharded and single-process runs record identical
    /// curve schedules by construction.
    pub fn run_to_convergence(&mut self, test_x: &[Vec<f64>], test_y: &[usize]) -> CleaningRun {
        CleaningEngine::run_to_convergence(self, test_x, test_y)
    }

    /// Fixed-order run with curve recording — [`CleaningEngine::run_order`],
    /// the sharded twin of [`CleaningSession::run_order`] (global row ids).
    pub fn run_order(
        &mut self,
        order: &[usize],
        test_x: &[Vec<f64>],
        test_y: &[usize],
    ) -> CleaningRun {
        CleaningEngine::run_order(self, order, test_x, test_y)
    }
}

impl CleaningEngine for ShardedSession {
    fn problem(&self) -> &CleaningProblem {
        &self.problem
    }

    fn run_options(&self) -> &RunOptions {
        &self.opts
    }

    fn cleaning_state(&self) -> &CleaningState {
        &self.state
    }

    fn n_certain(&self) -> usize {
        ShardedSession::n_certain(self)
    }

    fn n_val(&self) -> usize {
        self.cp.len()
    }

    fn clean(&mut self, row: usize) {
        ShardedSession::clean(self, row);
    }

    fn select_next(&self, remaining: &[usize]) -> usize {
        ShardedSession::select_next(self, remaining)
    }
}

/// [`SelectionBackend`] over the shard sessions' cached indexes: the exact
/// same routed `q2_probabilities_sharded_with_indexes` + `entropy_bits`
/// calls [`ShardedSession::select_next_naive`] makes, so the incremental
/// loop scores bit-identically to the sharded naive scorer.
struct ShardedBackend<'a> {
    session: &'a ShardedSession,
}

impl SelectionBackend for ShardedBackend<'_> {
    type Error = Infallible;

    fn base_entropy(&mut self, v: usize) -> Result<f64, Infallible> {
        let sess = self.session;
        let indexes: Vec<&SimilarityIndex> = sess.sessions.iter().map(|s| &*s.cache()[v]).collect();
        let masks: Vec<&Pins> = sess.sessions.iter().map(|s| s.state().pins()).collect();
        Ok(entropy_bits(&q2_probabilities_sharded_with_indexes(
            &sess.shards,
            &indexes,
            &masks,
            &sess.problem.config,
        )))
    }

    fn hypothetical_entropies(&mut self, v: usize, row: usize) -> Result<Vec<f64>, Infallible> {
        let sess = self.session;
        let indexes: Vec<&SimilarityIndex> = sess.sessions.iter().map(|s| &*s.cache()[v]).collect();
        let mut masks: Vec<Pins> = sess
            .sessions
            .iter()
            .map(|s| s.state().pins().clone())
            .collect();
        let s = sess.owner[row];
        let local = sess.shards[s].local_row(row).expect("owner map is exact");
        Ok((0..sess.problem.dataset.set_size(row))
            .map(|j| {
                masks[s].pin(local, j);
                let probs = q2_probabilities_sharded_with_indexes(
                    &sess.shards,
                    &indexes,
                    &masks,
                    &sess.problem.config,
                );
                masks[s].unpin(local);
                entropy_bits(&probs)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};

    /// The targeted instance the single-session unit tests use: two dirty
    /// rows, only row 1 influences the validation point.
    fn targeted_problem() -> CleaningProblem {
        let dataset = IncompleteDataset::new(
            vec![
                IncompleteExample::complete(vec![0.0], 0),
                IncompleteExample::incomplete(vec![vec![4.8], vec![7.0]], 0),
                IncompleteExample::complete(vec![5.5], 1),
                IncompleteExample::incomplete(vec![vec![100.0], vec![101.0]], 1),
            ],
            2,
        )
        .unwrap();
        CleaningProblem {
            dataset,
            config: CpConfig::new(1),
            val_x: std::sync::Arc::new(vec![vec![5.0], vec![0.1]]),
            truth_choice: vec![None, Some(0), None, Some(0)],
            default_choice: vec![None, Some(1), None, Some(1)],
        }
    }

    fn opts(n_threads: usize) -> RunOptions {
        RunOptions {
            max_cleaned: None,
            n_threads,
            record_every: 1,
        }
    }

    #[test]
    fn sharded_status_matches_single_session_for_every_shard_count() {
        let p = targeted_problem();
        for n_shards in [1, 2, 3, 4, 9] {
            let single = CleaningSession::new(&p, &opts(1));
            let sharded = ShardedSession::new(&p, n_shards, &opts(2));
            assert!(sharded.n_shards() <= p.dataset.len());
            assert_eq!(
                sharded.status(),
                single.status(),
                "fresh status, n_shards={n_shards}"
            );
        }
    }

    #[test]
    fn sharded_step_targets_the_influential_row_and_converges() {
        let p = targeted_problem();
        let mut session = ShardedSession::new(&p, 2, &opts(1));
        assert!(!session.converged());
        assert_eq!(session.n_certain(), 1);
        let row = session.step().expect("one step available");
        assert_eq!(row, 1, "greedy step must target the influential row");
        assert!(session.converged());
        assert_eq!(session.step(), None);
        assert_eq!(session.n_cleaned(), 1);
    }

    #[test]
    fn cleaning_routes_pins_to_the_owning_shard() {
        let p = targeted_problem();
        let mut session = ShardedSession::new(&p, 2, &opts(1));
        let s = session.owner_of(3);
        let local = session.shards()[s].local_row(3).unwrap();
        session.clean(3);
        assert_eq!(session.state().pins().pinned(3), Some(0), "global pin set");
        assert_eq!(
            session.shard_sessions()[s].state().pins().pinned(local),
            Some(0),
            "owning shard pinned locally"
        );
        // the other shard's mask is untouched
        let other = 1 - s;
        let other_len = session.shards()[other].len();
        for i in 0..other_len {
            assert_eq!(
                session.shard_sessions()[other].state().pins().pinned(i),
                None
            );
        }
    }

    /// The S+1-copies bug regression: every shard sub-problem (and its
    /// session's index cache) must alias the *same* `val_x` allocation as
    /// the session's global problem — which itself aliases the caller's.
    #[test]
    fn one_val_x_allocation_per_session_regardless_of_shard_count() {
        let p = targeted_problem();
        for n_shards in [1, 2, 3, 9] {
            let session = ShardedSession::new(&p, n_shards, &opts(1));
            assert!(
                Arc::ptr_eq(&p.val_x, &session.problem().val_x),
                "session problem must alias the caller's val_x"
            );
            for (s, shard_session) in session.shard_sessions().iter().enumerate() {
                assert!(
                    Arc::ptr_eq(&p.val_x, &shard_session.problem().val_x),
                    "shard {s} sub-problem must alias val_x (n_shards={n_shards})"
                );
                assert!(
                    Arc::ptr_eq(&p.val_x, shard_session.cache().points_shared()),
                    "shard {s} index cache must alias val_x (n_shards={n_shards})"
                );
            }
        }
    }

    #[test]
    fn budget_stops_stepping() {
        let p = targeted_problem();
        let mut o = opts(1);
        o.max_cleaned = Some(0);
        let mut session = ShardedSession::new(&p, 3, &o);
        assert_eq!(session.step(), None);
        assert_eq!(session.n_cleaned(), 0);
        assert!(!session.converged());
    }

    #[test]
    fn run_order_matches_single_session() {
        let p = targeted_problem();
        for n_shards in [1, 2, 4] {
            let sharded =
                ShardedSession::new(&p, n_shards, &opts(1)).run_order(&[1, 3], &[vec![5.0]], &[0]);
            let single = CleaningSession::new(&p, &opts(1)).run_order(&[1, 3], &[vec![5.0]], &[0]);
            assert_eq!(sharded.order, single.order, "n_shards={n_shards}");
            assert_eq!(sharded.converged, single.converged);
            assert_eq!(sharded.curve.len(), single.curve.len());
        }
    }
}
