//! The partition-parallel SortScan: per-shard scan state plus the
//! coordinator's merged scan.
//!
//! One [`ShardScan`] owns everything local to a shard: the shard's
//! similarity index for the test point, its pin mask, its [`UniformMass`]
//! tallies and its per-label [`TallyTree`]s. The coordinator
//! ([`q2_sharded_with_indexes`]) never sees candidates or similarities in
//! bulk — it merges the shard streams one boundary event at a time and
//! combines the shards' compact [`ShardFactors`] summaries:
//!
//! 1. each shard exposes its next not-yet-scanned candidate (similarity +
//!    global row id); the coordinator picks the global minimum under the
//!    same `(similarity, set, candidate)` total order the single-process
//!    scan sorts by, so the merged stream *is* the global scan order;
//! 2. the owning shard advances: one mass tally bump, one tree-leaf update
//!    (`O(K² log N_s)`), exactly as in the single-process SS-DC scan;
//! 3. the owning shard presents its factors with the boundary set excluded
//!    from its own label; the coordinator merges all shards' factors
//!    (associative per-label polynomial products, `O(S · |Y| · K²)`) and
//!    feeds the merged polynomials to the ordinary support accumulator.
//!
//! Because the label-support polynomial of the full dataset factorizes over
//! any partition of its candidate sets, the merged counts are *exactly* the
//! single-process counts — in every semiring (the property tests pin this
//! down in `u128`, where equality is bit-for-bit).

use cp_core::mass::{merge_totals, MassModel, UniformMass};
use cp_core::poly::TallyTree;
use cp_core::queries::Q2Algorithm;
use cp_core::ss_mc::accumulate_supports_mc;
use cp_core::ss_tree::use_multiclass_accumulator;
use cp_core::tally::{accumulate_supports, compositions};
use cp_core::{
    CpConfig, DatasetShard, ExtremeSummary, Pins, Q2Result, ShardFactors, SimilarityIndex,
};
use cp_knn::{Kernel, Label};
use cp_numeric::{CountSemiring, Possibility};
use std::borrow::Borrow;
use std::cmp::Ordering;

/// One shard's scan state for one test point: local similarity order, local
/// mass tallies, per-label tally trees over the shard's candidate sets.
#[derive(Clone, Debug)]
pub struct ShardScan<'a, S> {
    shard: &'a DatasetShard,
    idx: &'a SimilarityIndex,
    pins: &'a Pins,
    mass: UniformMass,
    trees: Vec<TallyTree<S>>,
    leaf_pos: Vec<usize>,
    cursor: usize,
}

impl<'a, S: CountSemiring> ShardScan<'a, S> {
    /// Open a scan at the position before the first boundary candidate.
    ///
    /// `idx` must be the similarity index of the *shard's* dataset for the
    /// test point, and `pins` the shard-local restriction of the global pin
    /// mask (see [`DatasetShard::local_pins`]); `k` is the **global**
    /// effective K.
    ///
    /// # Panics
    /// Panics if the pin mask does not validate against the shard dataset.
    pub fn new(
        shard: &'a DatasetShard,
        idx: &'a SimilarityIndex,
        pins: &'a Pins,
        k: usize,
    ) -> Self {
        let ds = shard.dataset();
        pins.validate(ds);
        let n = ds.len();
        let n_labels = ds.n_labels();
        let mass = UniformMass::new(ds, pins);
        // map each local candidate set to a leaf of its label's tree
        let mut leaf_pos = vec![0usize; n];
        let mut label_counts = vec![0usize; n_labels];
        for (i, pos) in leaf_pos.iter_mut().enumerate() {
            let l = ds.label(i);
            *pos = label_counts[l];
            label_counts[l] += 1;
        }
        let mut trees: Vec<TallyTree<S>> =
            label_counts.iter().map(|&c| TallyTree::new(c, k)).collect();
        for i in 0..n {
            trees[ds.label(i)].set_leaf(leaf_pos[i], mass.seen(i), mass.unseen(i));
        }
        let mut scan = ShardScan {
            shard,
            idx,
            pins,
            mass,
            trees,
            leaf_pos,
            cursor: 0,
        };
        scan.skip_disallowed();
        scan
    }

    /// Move the cursor past candidates the pin mask excludes from the scan.
    fn skip_disallowed(&mut self) {
        while let Some(&(i, j)) = self.idx.order().get(self.cursor) {
            if self.pins.allows(i as usize, j as usize) {
                break;
            }
            self.cursor += 1;
        }
    }

    /// The next boundary event, if any: `(similarity, global row, candidate)`
    /// — the key the coordinator merges shard streams by.
    pub fn peek(&self) -> Option<(f64, usize, u32)> {
        self.idx.order().get(self.cursor).map(|&(i, j)| {
            (
                self.idx.sim_at(self.cursor),
                self.shard.global_row(i as usize),
                j,
            )
        })
    }

    /// Process the next boundary event: bump the owning set's tally, refresh
    /// its tree leaf, move on. Returns `(local set, candidate)`.
    ///
    /// # Panics
    /// Panics if the shard stream is exhausted.
    pub fn advance(&mut self) -> (usize, u32) {
        let (i, j) = self.idx.order()[self.cursor];
        let (i, j) = (i as usize, j);
        MassModel::<S>::advance(&mut self.mass, i, j as usize);
        let label = self.shard.dataset().label(i);
        self.trees[label].set_leaf(self.leaf_pos[i], self.mass.seen(i), self.mass.unseen(i));
        self.cursor += 1;
        self.skip_disallowed();
        (i, j)
    }

    /// Label of a local candidate set.
    pub fn label(&self, local_set: usize) -> Label {
        self.shard.dataset().label(local_set)
    }

    /// This shard's current per-label partial factors (tree roots) — the
    /// compact summary it exchanges with the coordinator.
    pub fn factors(&self) -> ShardFactors<S> {
        ShardFactors::from_polys(
            self.trees.iter().map(|t| t.root().to_vec()).collect(),
            self.trees[0].k(),
        )
    }

    /// The current partial polynomial of one label.
    pub fn label_poly(&self, label: usize) -> &[S] {
        self.trees[label].root()
    }

    /// The boundary label's partial polynomial with `local_set` excluded —
    /// how the boundary set is removed from its own label's support.
    pub fn excluding_poly(&self, local_set: usize) -> Vec<S> {
        self.trees[self.label(local_set)].excluding(self.leaf_pos[local_set])
    }

    /// Mass of the boundary set choosing exactly candidate `cand`.
    /// (Uniform mass ignores the candidate, but threading the real one
    /// keeps this correct for any future non-uniform [`MassModel`].)
    pub fn boundary_mass(&self, local_set: usize, cand: u32) -> S {
        self.mass.boundary(local_set, cand as usize)
    }

    /// This shard's total world mass (`∏ M_i` over its own sets).
    pub fn total(&self) -> S {
        self.mass.total()
    }
}

/// The factor payload of one boundary event, as the coordinator's merge
/// loop consumes it: which label the boundary set belongs to, the owning
/// shard's refreshed partial polynomial for that label, the same polynomial
/// with the boundary set excluded, and the boundary candidate's own mass.
///
/// This is everything that crosses the shard boundary per event — `O(K)`
/// semiring values — whether the shard is a live [`ShardScan`] in the same
/// process or a remote worker whose whole event stream arrived in one
/// [`ShardStream`] message.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundaryEvent<S> {
    /// Label of the boundary candidate's set.
    pub label: Label,
    /// The owning shard's partial polynomial for `label` *after* this event.
    pub updated_poly: Vec<S>,
    /// The `label` polynomial with the boundary set excluded.
    pub excluding_poly: Vec<S>,
    /// Mass of the boundary set choosing exactly the boundary candidate.
    pub boundary_mass: S,
}

/// A shard-local source of locally-sorted boundary events with factor
/// payloads — the abstraction the merged scan drives.
///
/// Two implementations exist: a live [`ShardScan`] (in-process
/// partition-parallelism, factors computed on demand) and a
/// [`StreamCursor`] over a [`ShardStream`] (a remote shard's pre-computed
/// stream, decoded from one RPC message). The merge loop cannot tell them
/// apart, which is what makes the wire protocol's answers *identical* to
/// the in-process engine's.
pub trait FactorSource<S: CountSemiring> {
    /// The next boundary event's global merge key
    /// `(similarity, global row, candidate)`, if any.
    fn peek_key(&self) -> Option<(f64, usize, u32)>;

    /// Consume the next boundary event and return its factor payload.
    ///
    /// # Panics
    /// Panics if the source is exhausted.
    fn next_event(&mut self) -> BoundaryEvent<S>;

    /// The shard's per-label factors before any event was consumed.
    fn opening_factors(&self) -> ShardFactors<S>;

    /// The shard's total world mass.
    fn total_mass(&self) -> S;
}

impl<S: CountSemiring> FactorSource<S> for ShardScan<'_, S> {
    fn peek_key(&self) -> Option<(f64, usize, u32)> {
        self.peek()
    }

    fn next_event(&mut self) -> BoundaryEvent<S> {
        let (local_set, cand) = self.advance();
        let label = self.label(local_set);
        BoundaryEvent {
            label,
            updated_poly: self.label_poly(label).to_vec(),
            excluding_poly: self.excluding_poly(local_set),
            boundary_mass: self.boundary_mass(local_set, cand),
        }
    }

    fn opening_factors(&self) -> ShardFactors<S> {
        self.factors()
    }

    fn total_mass(&self) -> S {
        self.total()
    }
}

/// One entry of a batched shard stream: the global merge key plus the factor
/// payload of the event.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardStreamEvent<S> {
    /// Boundary similarity (the primary merge key).
    pub sim: f64,
    /// Global row id of the boundary set.
    pub row: usize,
    /// Boundary candidate index within its set.
    pub cand: u32,
    /// The factor payload.
    pub event: BoundaryEvent<S>,
}

/// A shard's **whole** locally-sorted boundary-event stream with factor
/// deltas, in one value — the batched exchange unit of the RPC layer: one
/// scan request yields one `ShardStream` message instead of one round-trip
/// per boundary event.
///
/// Captured by running the ordinary [`ShardScan`] to exhaustion
/// ([`ShardStream::capture`]), so every payload is produced by exactly the
/// code the in-process engine runs; replayed through [`StreamCursor`]s,
/// which implement [`FactorSource`] over the recorded events. A stream can
/// be replayed any number of times (the coordinator reuses every non-owner
/// shard's stream across all of a selection step's candidate pins).
#[derive(Clone, Debug, PartialEq)]
pub struct ShardStream<S> {
    /// Per-label factors before the first event.
    pub initial: ShardFactors<S>,
    /// The shard's total world mass.
    pub total: S,
    /// The locally-sorted boundary events.
    pub events: Vec<ShardStreamEvent<S>>,
}

impl<S: CountSemiring> ShardStream<S> {
    /// Drain a fresh [`ShardScan`] into its batched stream (the shard-server
    /// side of a scan request). Arguments are exactly [`ShardScan::new`]'s.
    ///
    /// # Panics
    /// Panics if the pin mask does not validate against the shard dataset.
    pub fn capture(shard: &DatasetShard, idx: &SimilarityIndex, pins: &Pins, k: usize) -> Self {
        let mut scan: ShardScan<'_, S> = ShardScan::new(shard, idx, pins, k);
        let initial = scan.factors();
        let total = scan.total();
        let mut events = Vec::new();
        while let Some((sim, row, cand)) = scan.peek() {
            let event = FactorSource::next_event(&mut scan);
            events.push(ShardStreamEvent {
                sim,
                row,
                cand,
                event,
            });
        }
        ShardStream {
            initial,
            total,
            events,
        }
    }

    /// A replay cursor positioned before the first event.
    pub fn cursor(&self) -> StreamCursor<'_, S> {
        StreamCursor {
            stream: self,
            pos: 0,
        }
    }

    /// Slot budget K of the recorded factors.
    pub fn k(&self) -> usize {
        self.initial.k()
    }

    /// Number of labels covered.
    pub fn n_labels(&self) -> usize {
        self.initial.n_labels()
    }
}

/// A replay position inside a [`ShardStream`] — the decoded-frames
/// implementation of [`FactorSource`].
#[derive(Clone, Debug)]
pub struct StreamCursor<'a, S> {
    stream: &'a ShardStream<S>,
    pos: usize,
}

impl<S: CountSemiring> FactorSource<S> for StreamCursor<'_, S> {
    fn peek_key(&self) -> Option<(f64, usize, u32)> {
        self.stream
            .events
            .get(self.pos)
            .map(|e| (e.sim, e.row, e.cand))
    }

    fn next_event(&mut self) -> BoundaryEvent<S> {
        let e = &self.stream.events[self.pos];
        self.pos += 1;
        e.event.clone()
    }

    fn opening_factors(&self) -> ShardFactors<S> {
        self.stream.initial.clone()
    }

    fn total_mass(&self) -> S {
        self.stream.total.clone()
    }
}

/// Check that `shards` is a contiguous partition starting at row zero and
/// that the per-shard slices line up; returns `(total rows, n_labels)`.
fn check_shards<I, P>(shards: &[DatasetShard], indexes: &[I], pins: &[P]) -> (usize, usize) {
    assert!(!shards.is_empty(), "need at least one shard");
    assert_eq!(shards.len(), indexes.len(), "one index per shard");
    assert_eq!(shards.len(), pins.len(), "one pin mask per shard");
    let mut next = 0;
    for sh in shards {
        assert_eq!(sh.start(), next, "shards must be a contiguous partition");
        next = sh.end();
    }
    (next, shards[0].dataset().n_labels())
}

/// Build one similarity index per shard for a test point — the per-shard
/// `O(N_s M log N_s M)` sort, independent across shards.
pub fn build_shard_indexes(
    shards: &[DatasetShard],
    kernel: Kernel,
    t: &[f64],
) -> Vec<SimilarityIndex> {
    shards
        .iter()
        .map(|sh| SimilarityIndex::build(sh.dataset(), kernel, t))
        .collect()
}

/// Restrict a global pin mask to every shard (local indexing).
pub fn local_pins(shards: &[DatasetShard], global: &Pins) -> Vec<Pins> {
    shards.iter().map(|sh| sh.local_pins(global)).collect()
}

/// The merged partition-parallel scan (see the module docs for the
/// protocol). `force_mc` overrides the tally-enumeration/multi-class
/// accumulator auto-dispatch; `stop` is polled after each boundary event
/// and may cut the scan short once the caller's question is already
/// answered (the counts are then partial, the total is still exact).
fn merged_scan_until<S, I, P>(
    shards: &[DatasetShard],
    indexes: &[I],
    pins: &[P],
    cfg: &CpConfig,
    force_mc: Option<bool>,
    stop: impl Fn(&[S]) -> bool,
) -> Q2Result<S>
where
    S: CountSemiring,
    I: Borrow<SimilarityIndex>,
    P: Borrow<Pins>,
{
    let (n_total, n_labels) = check_shards(shards, indexes, pins);
    let k = cfg.k_eff(n_total);
    let mut scans: Vec<ShardScan<'_, S>> = shards
        .iter()
        .zip(indexes)
        .zip(pins)
        .map(|((sh, idx), p)| ShardScan::new(sh, idx.borrow(), p.borrow(), k))
        .collect();
    merged_scan_sources(&mut scans, n_labels, k, force_mc, stop)
}

/// The merge loop over abstract factor sources — the engine shared by the
/// in-process scan (live [`ShardScan`]s) and the RPC coordinator (decoded
/// [`StreamCursor`]s): pick the globally next boundary event under the
/// `(similarity, row, candidate)` total order, refresh the owner's cached
/// factor summary, merge all shards' factors with the boundary set excluded
/// from its own label, and accumulate supports. Identical inputs produce
/// identical outputs bit-for-bit regardless of the source kind.
pub fn merged_scan_sources<S, F>(
    sources: &mut [F],
    n_labels: usize,
    k: usize,
    force_mc: Option<bool>,
    stop: impl Fn(&[S]) -> bool,
) -> Q2Result<S>
where
    S: CountSemiring,
    F: FactorSource<S>,
{
    assert!(!sources.is_empty(), "need at least one factor source");
    let use_mc = force_mc.unwrap_or_else(|| use_multiclass_accumulator(n_labels, k));
    let comps = if use_mc {
        Vec::new()
    } else {
        compositions(n_labels, k)
    };

    // cached per-shard factor summaries; only the owner's entry changes per
    // boundary event
    let mut factors: Vec<ShardFactors<S>> = sources.iter().map(|s| s.opening_factors()).collect();
    let mut counts = vec![S::zero(); n_labels];

    loop {
        // the shard owning the globally next boundary candidate, under the
        // exact (similarity, row, candidate) order the single scan sorts by
        let mut owner: Option<(usize, (f64, usize, u32))> = None;
        for (s, src) in sources.iter().enumerate() {
            if let Some(ev) = src.peek_key() {
                let better = match &owner {
                    None => true,
                    Some((_, best)) => match ev.0.total_cmp(&best.0) {
                        Ordering::Less => true,
                        Ordering::Equal => (ev.1, ev.2) < (best.1, best.2),
                        Ordering::Greater => false,
                    },
                };
                if better {
                    owner = Some((s, ev));
                }
            }
        }
        let Some((s, _)) = owner else { break };

        let ev = sources[s].next_event();
        let yi = ev.label;
        factors[s].set_poly(yi, ev.updated_poly);

        // merge: owner's factors with the boundary set excluded from its own
        // label, times every other shard's summary
        let mut merged = factors[s].with_poly(yi, ev.excluding_poly);
        for (u, f) in factors.iter().enumerate() {
            if u != s {
                merged.merge_assign(f);
            }
        }
        let polys = merged.poly_refs();
        if use_mc {
            accumulate_supports_mc(k, yi, &ev.boundary_mass, &polys, &mut counts);
        } else {
            accumulate_supports(&comps, yi, &ev.boundary_mass, &polys, &mut counts);
        }
        if stop(&counts) {
            break;
        }
    }

    Q2Result {
        counts,
        total: merge_totals(sources.iter().map(|s| s.total_mass())),
    }
}

/// Check that a set of shard streams agree on slot budget and label count;
/// returns `(n_labels, k)`.
fn check_streams<S: CountSemiring, T: Borrow<ShardStream<S>>>(streams: &[T]) -> (usize, usize) {
    assert!(!streams.is_empty(), "need at least one shard stream");
    let (n_labels, k) = (streams[0].borrow().n_labels(), streams[0].borrow().k());
    for st in streams {
        assert_eq!(st.borrow().n_labels(), n_labels, "label count mismatch");
        assert_eq!(st.borrow().k(), k, "slot budget mismatch");
    }
    (n_labels, k)
}

fn merged_streams_until<S, T>(
    streams: &[T],
    force_mc: Option<bool>,
    stop: impl Fn(&[S]) -> bool,
) -> Q2Result<S>
where
    S: CountSemiring,
    T: Borrow<ShardStream<S>>,
{
    let (n_labels, k) = check_streams(streams);
    let mut cursors: Vec<StreamCursor<'_, S>> =
        streams.iter().map(|st| st.borrow().cursor()).collect();
    merged_scan_sources(&mut cursors, n_labels, k, force_mc, stop)
}

/// Capture every shard's batched event stream for one test point — the
/// stream twin of driving [`q2_sharded_with_indexes`] directly, and what a
/// fleet of shard servers computes (one stream each) in response to a scan
/// request.
pub fn capture_streams<S, I, P>(
    shards: &[DatasetShard],
    indexes: &[I],
    pins: &[P],
    cfg: &CpConfig,
) -> Vec<ShardStream<S>>
where
    S: CountSemiring,
    I: Borrow<SimilarityIndex>,
    P: Borrow<Pins>,
{
    let (n_total, _) = check_shards(shards, indexes, pins);
    let k = cfg.k_eff(n_total);
    shards
        .iter()
        .zip(indexes)
        .zip(pins)
        .map(|((sh, idx), p)| ShardStream::capture(sh, idx.borrow(), p.borrow(), k))
        .collect()
}

/// **Q2 from batched shard streams** — the coordinator's side of the RPC
/// exchange: merge pre-captured (or decoded) per-shard event streams into
/// the exact global counts. Equal to [`q2_sharded_with_indexes`] on streams
/// captured from the same shards/pins, bit-for-bit in exact semirings.
pub fn q2_from_streams<S, T>(streams: &[T]) -> Q2Result<S>
where
    S: CountSemiring,
    T: Borrow<ShardStream<S>>,
{
    merged_streams_until(streams, None, |_| false)
}

/// [`q2_from_streams`] with an explicit algorithm choice (same graceful
/// fallbacks as [`q2_sharded_with_algorithm`]).
pub fn q2_from_streams_with_algorithm<S, T>(streams: &[T], algo: Q2Algorithm) -> Q2Result<S>
where
    S: CountSemiring,
    T: Borrow<ShardStream<S>>,
{
    merged_streams_until(streams, algorithm_force_mc(algo), |_| false)
}

/// The certainly-predicted label (if any) from batched `Possibility`-semiring
/// shard streams, with the same two-labels-possible early exit as
/// [`certain_label_sharded_with_indexes`].
pub fn certain_label_from_streams<T>(streams: &[T]) -> Option<Label>
where
    T: Borrow<ShardStream<Possibility>>,
{
    let (n_labels, k) = check_streams(streams);
    let mut cursors: Vec<StreamCursor<'_, Possibility>> =
        streams.iter().map(|st| st.borrow().cursor()).collect();
    certain_label_from_sources(&mut cursors, n_labels, k)
}

/// [`certain_label_from_streams`] over any mix of [`FactorSource`]s — the
/// entry point for scans whose shard streams live partly on disk (the
/// `cp-rpc` spill layer's `RunCursor`s) and partly in RAM. The
/// two-labels-possible early exit means a source whose first key is never
/// reached contributes nothing but its opening factors, which is what lets
/// a lazy on-disk source skip its block decode entirely.
pub fn certain_label_from_sources<F>(sources: &mut [F], n_labels: usize, k: usize) -> Option<Label>
where
    F: FactorSource<Possibility>,
{
    let uncertain = |counts: &[Possibility]| counts.iter().filter(|c| c.0).count() >= 2;
    merged_scan_sources(sources, n_labels, k, None, uncertain).certain_label()
}

/// Q2 prediction probabilities from batched probability-space shard streams.
pub fn q2_probabilities_from_streams<T>(streams: &[T]) -> Vec<f64>
where
    T: Borrow<ShardStream<f64>>,
{
    q2_from_streams::<f64, T>(streams).probabilities()
}

/// **Q2 over a sharded dataset**, against prebuilt per-shard indexes and
/// shard-local pin masks — the sharded twin of
/// `cp_core::ss_tree::q2_sortscan_tree_with_index`.
///
/// `indexes` and `pins` accept owned values or references (anything
/// [`Borrow`]-ing the shard index / pin mask), so callers can pass the
/// `Vec<SimilarityIndex>` from [`build_shard_indexes`] or borrowed
/// per-shard state without building reference vectors.
pub fn q2_sharded_with_indexes<S, I, P>(
    shards: &[DatasetShard],
    indexes: &[I],
    pins: &[P],
    cfg: &CpConfig,
) -> Q2Result<S>
where
    S: CountSemiring,
    I: Borrow<SimilarityIndex>,
    P: Borrow<Pins>,
{
    merged_scan_until(shards, indexes, pins, cfg, None, |_| false)
}

/// [`q2_sharded_with_indexes`] with an explicit algorithm choice.
///
/// Only the SortScan family decomposes over partitions; the selectors
/// without a sharded counterpart **fall back gracefully** to the merged
/// tree scan, which returns the identical exact counts:
///
/// * `Auto` / `SortScanTree` — the merged divide-and-conquer scan;
/// * `SortScanMultiClass` — the merged scan with the label-capped
///   accumulator forced on;
/// * `SortScan` / `BruteForce` — no partition-parallel decomposition exists
///   (brute force enumerates cross-shard worlds; the naive DP rebuilds
///   global state per boundary), so both fall back to the merged tree scan.
pub fn q2_sharded_with_algorithm<S, I, P>(
    shards: &[DatasetShard],
    indexes: &[I],
    pins: &[P],
    cfg: &CpConfig,
    algo: Q2Algorithm,
) -> Q2Result<S>
where
    S: CountSemiring,
    I: Borrow<SimilarityIndex>,
    P: Borrow<Pins>,
{
    merged_scan_until(shards, indexes, pins, cfg, algorithm_force_mc(algo), |_| {
        false
    })
}

/// Map an algorithm selector onto the merged scan's accumulator override
/// (the only selector degree of freedom that decomposes over shards).
fn algorithm_force_mc(algo: Q2Algorithm) -> Option<bool> {
    match algo {
        Q2Algorithm::SortScanMultiClass => Some(true),
        Q2Algorithm::Auto
        | Q2Algorithm::SortScanTree
        | Q2Algorithm::SortScan
        | Q2Algorithm::BruteForce => None,
    }
}

/// **Q2 for one test point** over a sharded dataset: builds the per-shard
/// indexes, restricts the global pin mask, runs the merged scan.
pub fn q2_sharded<S: CountSemiring>(
    shards: &[DatasetShard],
    cfg: &CpConfig,
    t: &[f64],
    global_pins: &Pins,
) -> Q2Result<S> {
    let indexes = build_shard_indexes(shards, cfg.kernel, t);
    let pins = local_pins(shards, global_pins);
    q2_sharded_with_indexes(shards, &indexes, &pins, cfg)
}

/// The certainly-predicted label (if any) over a sharded dataset, with the
/// same dispatch as the single-process [`cp_core::certain_label_with_index`]:
///
/// * binary label spaces take the **MM extreme-summary fast path** — each
///   shard summarizes its extreme-world top-K ([`extreme_summaries`]), the
///   summaries merge by rank, and the two-extreme-worlds check decides; no
///   boundary-event stream, no tally trees;
/// * `|Y| ≠ 2` runs the merged [`Possibility`]-semiring scan
///   ([`certain_label_sharded_merged_scan`]) — exact and overflow-free.
///
/// Both routes are property-tested equal to each other and to the
/// single-process answers for every shard count.
pub fn certain_label_sharded_with_indexes<I, P>(
    shards: &[DatasetShard],
    indexes: &[I],
    pins: &[P],
    cfg: &CpConfig,
) -> Option<Label>
where
    I: Borrow<SimilarityIndex>,
    P: Borrow<Pins>,
{
    let (_, n_labels) = check_shards(shards, indexes, pins);
    if n_labels == 2 {
        let summaries = extreme_summaries(shards, indexes, pins, cfg);
        certain_label_from_summaries(&summaries)
    } else {
        certain_label_sharded_merged_scan(shards, indexes, pins, cfg)
    }
}

/// The certainly-predicted label via the merged scan in the exact boolean
/// [`Possibility`] semiring — the any-`|Y|` route, and the oracle the
/// binary summary path is property-tested against.
pub fn certain_label_sharded_merged_scan<I, P>(
    shards: &[DatasetShard],
    indexes: &[I],
    pins: &[P],
    cfg: &CpConfig,
) -> Option<Label>
where
    I: Borrow<SimilarityIndex>,
    P: Borrow<Pins>,
{
    // early exit: once two labels are possible the point is uncertain and
    // possibility bits can only turn on, so the rest of the scan cannot
    // change the answer
    let uncertain = |counts: &[Possibility]| counts.iter().filter(|c| c.0).count() >= 2;
    let r: Q2Result<Possibility> = merged_scan_until(shards, indexes, pins, cfg, None, uncertain);
    r.certain_label()
}

/// Build one [`ExtremeSummary`] per shard for one test point — the MM twin
/// of [`capture_streams`]: `O(|Y| · K)` entries per shard, independent of
/// shard size, merged by rank at the coordinator.
pub fn extreme_summaries<I, P>(
    shards: &[DatasetShard],
    indexes: &[I],
    pins: &[P],
    cfg: &CpConfig,
) -> Vec<ExtremeSummary>
where
    I: Borrow<SimilarityIndex>,
    P: Borrow<Pins>,
{
    let (n_total, _) = check_shards(shards, indexes, pins);
    let k = cfg.k_eff(n_total);
    shards
        .iter()
        .zip(indexes)
        .zip(pins)
        .map(|((sh, idx), p)| ExtremeSummary::build(sh, idx.borrow(), p.borrow(), k))
        .collect()
}

/// **Binary Q1 from per-shard extreme summaries** — the coordinator's side
/// of the MM fast path: fold the summaries with the associative rank merge,
/// then run the cheap two-extreme-worlds check on the merged result. Equal
/// to [`cp_core::mm::certain_label_minmax`] on the unsharded dataset and to
/// the merged `Possibility` scan, bit-for-bit.
///
/// # Panics
/// Panics if `summaries` is empty, on shape mismatches, or when the
/// summaries are not binary (`|Y| = 2` is the proven MM regime).
pub fn certain_label_from_summaries<T>(summaries: &[T]) -> Option<Label>
where
    T: Borrow<ExtremeSummary>,
{
    assert!(!summaries.is_empty(), "need at least one extreme summary");
    let mut merged = summaries[0].borrow().clone();
    for s in &summaries[1..] {
        merged.merge_assign(s.borrow());
    }
    merged.certain_label()
}

/// Q2 prediction probabilities (uniform candidate prior) via the merged scan
/// in probability space.
pub fn q2_probabilities_sharded_with_indexes<I, P>(
    shards: &[DatasetShard],
    indexes: &[I],
    pins: &[P],
    cfg: &CpConfig,
) -> Vec<f64>
where
    I: Borrow<SimilarityIndex>,
    P: Borrow<Pins>,
{
    cp_core::note_q2_probability_query();
    let r: Q2Result<f64> = q2_sharded_with_indexes(shards, indexes, pins, cfg);
    r.probabilities()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_core::queries::q2_with_algorithm;
    use cp_core::{IncompleteDataset, IncompleteExample};

    fn figure6() -> (IncompleteDataset, Vec<f64>) {
        let ds = IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![8.0]], 1),
                IncompleteExample::incomplete(vec![vec![2.0], vec![4.0]], 1),
                IncompleteExample::incomplete(vec![vec![6.0], vec![9.0]], 0),
            ],
            2,
        )
        .unwrap();
        (ds, vec![10.0])
    }

    #[test]
    fn sharded_counts_match_single_process_for_every_shard_count() {
        let (ds, t) = figure6();
        for k in 1..=3 {
            let cfg = CpConfig::new(k);
            let single = cp_core::q2::<u128>(&ds, &cfg, &t);
            for n_shards in 1..=3 {
                let shards = ds.partition(n_shards);
                let sharded = q2_sharded::<u128>(&shards, &cfg, &t, &Pins::none(ds.len()));
                assert_eq!(sharded.counts, single.counts, "k={k} n_shards={n_shards}");
                assert_eq!(sharded.total, single.total);
            }
        }
    }

    #[test]
    fn sharded_scan_respects_global_pins() {
        let (ds, t) = figure6();
        let cfg = CpConfig::new(1);
        for (set, cand) in [(0, 1), (1, 0), (2, 1)] {
            let pins = Pins::single(ds.len(), set, cand);
            let single = cp_core::ss_tree::q2_sortscan_tree::<u128>(&ds, &cfg, &t, &pins);
            for n_shards in [2, 3] {
                let shards = ds.partition(n_shards);
                let sharded = q2_sharded::<u128>(&shards, &cfg, &t, &pins);
                assert_eq!(
                    sharded.counts, single.counts,
                    "pin ({set},{cand}) n_shards={n_shards}"
                );
            }
        }
    }

    #[test]
    fn algorithm_selectors_fall_back_to_identical_counts() {
        let (ds, t) = figure6();
        let cfg = CpConfig::new(2);
        let shards = ds.partition(2);
        let indexes = build_shard_indexes(&shards, cfg.kernel, &t);
        let pins = local_pins(&shards, &Pins::none(ds.len()));
        let reference = q2_with_algorithm::<u128>(&ds, &cfg, &t, Q2Algorithm::BruteForce);
        for algo in [
            Q2Algorithm::Auto,
            Q2Algorithm::BruteForce,
            Q2Algorithm::SortScan,
            Q2Algorithm::SortScanTree,
            Q2Algorithm::SortScanMultiClass,
        ] {
            let r = q2_sharded_with_algorithm::<u128, _, _>(&shards, &indexes, &pins, &cfg, algo);
            assert_eq!(r.counts, reference.counts, "algo={algo:?}");
            assert_eq!(r.total, reference.total);
        }
    }

    #[test]
    fn certain_label_and_probabilities_match_single_process() {
        let (ds, t) = figure6();
        for k in [1, 3] {
            let cfg = CpConfig::new(k);
            let shards = ds.partition(3);
            let indexes = build_shard_indexes(&shards, cfg.kernel, &t);
            let pins = local_pins(&shards, &Pins::none(ds.len()));
            assert_eq!(
                certain_label_sharded_with_indexes(&shards, &indexes, &pins, &cfg),
                cp_core::certain_label(&ds, &cfg, &t),
                "k={k}"
            );
            let sharded = q2_probabilities_sharded_with_indexes(&shards, &indexes, &pins, &cfg);
            let single = cp_core::q2_probabilities(&ds, &cfg, &t);
            for (a, b) in sharded.iter().zip(&single) {
                assert!((a - b).abs() < 1e-12, "k={k}: {sharded:?} vs {single:?}");
            }
        }
    }

    #[test]
    fn summary_path_matches_merged_scan_and_single_process_mm() {
        let (ds, t) = figure6();
        for k in 1..=3 {
            let cfg = CpConfig::new(k);
            let idx = cp_core::SimilarityIndex::build(&ds, cfg.kernel, &t);
            for pins in [
                Pins::none(ds.len()),
                Pins::single(ds.len(), 2, 1),
                Pins::from_pairs(ds.len(), &[(0, 0), (1, 1)]),
            ] {
                let single = cp_core::mm::certain_label_minmax(&ds, &cfg, &idx, &pins);
                for n_shards in 1..=3 {
                    let shards = ds.partition(n_shards);
                    let indexes = build_shard_indexes(&shards, cfg.kernel, &t);
                    let local = local_pins(&shards, &pins);
                    let dispatched =
                        certain_label_sharded_with_indexes(&shards, &indexes, &local, &cfg);
                    let scanned =
                        certain_label_sharded_merged_scan(&shards, &indexes, &local, &cfg);
                    let summaries = extreme_summaries(&shards, &indexes, &local, &cfg);
                    assert_eq!(dispatched, single, "k={k} n_shards={n_shards}");
                    assert_eq!(dispatched, scanned, "k={k} n_shards={n_shards}");
                    assert_eq!(certain_label_from_summaries(&summaries), single);
                }
            }
        }
    }

    #[test]
    fn streams_replay_to_the_exact_live_counts() {
        let (ds, t) = figure6();
        for k in 1..=3 {
            let cfg = CpConfig::new(k);
            for n_shards in 1..=3 {
                let shards = ds.partition(n_shards);
                let indexes = build_shard_indexes(&shards, cfg.kernel, &t);
                for pins in [Pins::none(ds.len()), Pins::single(ds.len(), 1, 0)] {
                    let local = local_pins(&shards, &pins);
                    let live: Q2Result<u128> =
                        q2_sharded_with_indexes(&shards, &indexes, &local, &cfg);
                    let streams: Vec<ShardStream<u128>> =
                        capture_streams(&shards, &indexes, &local, &cfg);
                    let replayed = q2_from_streams(&streams);
                    assert_eq!(replayed.counts, live.counts, "k={k} n_shards={n_shards}");
                    assert_eq!(replayed.total, live.total);
                    // replays are repeatable: a second pass over the same
                    // streams gives the same counts (the coordinator reuses
                    // non-owner streams across candidate pins)
                    assert_eq!(q2_from_streams(&streams).counts, live.counts);

                    // probability space is bit-identical too: the stream
                    // payloads are produced by the same f64 operations
                    let live_p: Q2Result<f64> =
                        q2_sharded_with_indexes(&shards, &indexes, &local, &cfg);
                    let streams_p: Vec<ShardStream<f64>> =
                        capture_streams(&shards, &indexes, &local, &cfg);
                    assert_eq!(
                        q2_probabilities_from_streams(&streams_p),
                        live_p.probabilities()
                    );

                    // certain-label answers agree as well
                    let streams_q: Vec<ShardStream<Possibility>> =
                        capture_streams(&shards, &indexes, &local, &cfg);
                    assert_eq!(
                        certain_label_from_streams(&streams_q),
                        certain_label_sharded_with_indexes(&shards, &indexes, &local, &cfg)
                    );
                }
            }
        }
    }

    #[test]
    fn stream_algorithm_selectors_match_live_selectors() {
        let (ds, t) = figure6();
        let cfg = CpConfig::new(2);
        let shards = ds.partition(2);
        let indexes = build_shard_indexes(&shards, cfg.kernel, &t);
        let pins = local_pins(&shards, &Pins::none(ds.len()));
        let streams: Vec<ShardStream<u128>> = capture_streams(&shards, &indexes, &pins, &cfg);
        for algo in [
            Q2Algorithm::Auto,
            Q2Algorithm::BruteForce,
            Q2Algorithm::SortScan,
            Q2Algorithm::SortScanTree,
            Q2Algorithm::SortScanMultiClass,
        ] {
            let live =
                q2_sharded_with_algorithm::<u128, _, _>(&shards, &indexes, &pins, &cfg, algo);
            let replayed = q2_from_streams_with_algorithm(&streams, algo);
            assert_eq!(replayed.counts, live.counts, "algo={algo:?}");
            assert_eq!(replayed.total, live.total);
        }
    }

    #[test]
    #[should_panic(expected = "slot budget mismatch")]
    fn mismatched_streams_are_rejected() {
        let (ds, t) = figure6();
        let shards = ds.partition(2);
        let indexes = build_shard_indexes(&shards, Kernel::default(), &t);
        let pins = local_pins(&shards, &Pins::none(ds.len()));
        let a: ShardStream<u128> = ShardStream::capture(&shards[0], &indexes[0], &pins[0], 1);
        let b: ShardStream<u128> = ShardStream::capture(&shards[1], &indexes[1], &pins[1], 2);
        q2_from_streams(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "contiguous partition")]
    fn rejects_non_contiguous_shards() {
        let (ds, t) = figure6();
        let cfg = CpConfig::new(1);
        let shards = ds.partition(2);
        let reversed: Vec<DatasetShard> = shards.into_iter().rev().collect();
        q2_sharded::<u128>(&reversed, &cfg, &t, &Pins::none(ds.len()));
    }
}
