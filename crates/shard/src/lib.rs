//! # cp-shard — partition-parallel certain predictions
//!
//! Scale-out layer for the CP query engine: one incomplete dataset is
//! partitioned into contiguous row-range [`DatasetShard`]s, each shard
//! scans **only its own candidate sets**, and a coordinator reassembles
//! exact global answers from compact per-shard summaries. This is the
//! single-query analogue of the batch engine's point-parallelism — a single
//! huge Q1/Q2/CPClean query now scales across workers too — and the
//! designed foundation for a multi-process/RPC serving layer (each
//! `ShardScan`/`CleaningSession` below is the state a remote worker would
//! own; only the merge messages cross the boundary).
//!
//! ## The factor-merge algebra
//!
//! The SS counting algorithm's per-label support is a product of per-set
//! slot polynomials (`out + in·z`, truncated at degree K). Products
//! factorize over any partition of the candidate sets, so for shards
//! `D = D₁ ∪ … ∪ D_S` and every label `l`:
//!
//! ```text
//! poly_l(D) = poly_l(D₁) · poly_l(D₂) · … · poly_l(D_S)   (mod z^{K+1})
//! ```
//!
//! Each shard maintains its partial `poly_l` incrementally in per-label
//! tally trees (exactly the single-process SS-DC machinery, over fewer
//! leaves) and exports it as a [`cp_core::ShardFactors`] value: `|Y|·(K+1)`
//! semiring coefficients, independent of shard size. `ShardFactors::merge`
//! is associative with an identity, so the coordinator may combine shard
//! summaries pairwise, tree-wise, or in streaming order; world-mass totals
//! merge by semiring multiplication ([`cp_core::merge_totals`]). Truncation
//! at degree K commutes with merging because a product coefficient of
//! degree ≤ K never consumes factor coefficients of degree > K.
//!
//! The only global sequencing the scan needs is the boundary order: the
//! coordinator merges the shards' (locally sorted) candidate streams by the
//! same `(similarity, row, candidate)` total order the single-process scan
//! sorts by, advances the owning shard, and accumulates supports from the
//! merged factors. Counts are therefore **exactly** — bit-for-bit in exact
//! semirings — the single-process counts, for every shard count; the
//! property tests in `tests/shard_equivalence.rs` assert this together with
//! status/selection equivalence of [`ShardedSession`] against
//! `cp_clean::CleaningSession`.
//!
//! ## The rank-merge algebra (binary Q1)
//!
//! MinMax does not factor into polynomial products (per-set extremes are
//! not products), but it decomposes by **rank**: each shard's extreme-world
//! choices are purely local, and the global extreme worlds' top-K is the
//! top-K of the per-shard top-Ks. [`scan::extreme_summaries`] builds one
//! rank-ordered [`cp_core::ExtremeSummary`] per shard (`O(|Y|·K)` entries,
//! independent of shard size; associative merge with identity, law-tested
//! like `ShardFactors`), and
//! [`scan::certain_label_from_summaries`] folds them and runs the cheap
//! two-extreme-worlds check — so sharded status checks on binary label
//! spaces skip the boundary-event stream and the tally trees entirely,
//! recovering the single-process MM fast path
//! ([`scan::certain_label_sharded_with_indexes`] dispatches automatically).
//!
//! What still does *not* decompose: brute force (worlds couple across
//! shards) and the non-tree SortScan selectors. Those entry points fall
//! back gracefully to the merged Possibility-semiring/tree scans — same
//! exact answers, different constant factors (see
//! [`scan::q2_sharded_with_algorithm`]).
//!
//! ## Layers
//!
//! * [`scan`] — [`ShardScan`] (per-shard scan state) and the merged-scan
//!   query functions (`q2_sharded*`, `certain_label_sharded_with_indexes`,
//!   `q2_probabilities_sharded_with_indexes`).
//! * [`session`] — [`ShardedSession`]: one `cp_clean::CleaningSession` per
//!   shard (each with its partition-local index cache built exactly once),
//!   with the same `step()`/`status()`/`run_to_convergence()`/`run_order()`
//!   surface as the single-process engine and greedy selection routed to
//!   the owning shard.

pub mod scan;
pub mod session;

pub use scan::{
    build_shard_indexes, capture_streams, certain_label_from_sources, certain_label_from_streams,
    certain_label_from_summaries, certain_label_sharded_merged_scan,
    certain_label_sharded_with_indexes, extreme_summaries, local_pins, merged_scan_sources,
    q2_from_streams, q2_from_streams_with_algorithm, q2_probabilities_from_streams,
    q2_probabilities_sharded_with_indexes, q2_sharded, q2_sharded_with_algorithm,
    q2_sharded_with_indexes, BoundaryEvent, FactorSource, ShardScan, ShardStream, ShardStreamEvent,
    StreamCursor,
};
pub use session::ShardedSession;

/// Re-export: the partition type the whole crate operates on.
pub use cp_core::DatasetShard;

/// Re-export: the mergeable per-label factor summary.
pub use cp_core::ShardFactors;

/// Re-export: the mergeable rank-ordered MM summary (binary Q1 fast path).
pub use cp_core::ExtremeSummary;
