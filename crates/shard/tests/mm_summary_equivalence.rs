//! Exact equivalence of the binary-Q1 extreme-summary fast path.
//!
//! For random binary cleaning problems, shard counts `{1, 2, 3, 7}`,
//! random pin masks and random cleaning orders, three answers must be
//! identical at every point:
//!
//! * the rank-merged summary path ([`certain_label_sharded_with_indexes`]
//!   dispatch and the explicit [`certain_label_from_summaries`] fold);
//! * the merged `Possibility`-semiring scan
//!   ([`certain_label_sharded_merged_scan`], the pre-fast-path route);
//! * single-process MM ([`cp_core::mm::certain_label_minmax`]).
//!
//! The session-level test drives the same equivalence through
//! [`ShardedSession`]'s incremental status along arbitrary cleaning
//! trajectories (the status-update workload the fast path exists for).

use cp_clean::{CleaningProblem, CleaningSession, RunOptions};
use cp_core::mm::certain_label_minmax;
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample, Pins, SimilarityIndex};
use cp_shard::{
    build_shard_indexes, certain_label_from_summaries, certain_label_sharded_merged_scan,
    certain_label_sharded_with_indexes, extreme_summaries, local_pins, ShardedSession,
};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// A random small **binary** cleaning problem — the same family as the
/// shard-equivalence suite with `|Y|` fixed at 2 (the MM regime).
fn arb_binary_instance() -> impl Strategy<Value = (CleaningProblem, u64)> {
    (4usize..=7, 1usize..=3).prop_flat_map(|(n, k)| {
        let example =
            (proptest::collection::vec(-9i32..9, 1..=3), 0usize..2).prop_map(|(grid, label)| {
                let candidates: Vec<Vec<f64>> = grid.into_iter().map(|g| vec![g as f64]).collect();
                if candidates.len() == 1 {
                    IncompleteExample::complete(candidates.into_iter().next().unwrap(), label)
                } else {
                    IncompleteExample::incomplete(candidates, label)
                }
            });
        (
            proptest::collection::vec(example, n..=n),
            proptest::collection::vec(-9i32..9, 1..=3),
            Just(k),
            0u64..u64::MAX,
        )
            .prop_map(move |(examples, val, k, seed)| {
                let dataset = IncompleteDataset::new(examples, 2).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let choices = |rng: &mut StdRng| -> Vec<Option<usize>> {
                    (0..dataset.len())
                        .map(|i| {
                            let m = dataset.set_size(i);
                            (m > 1).then(|| rng.gen_range(0..m))
                        })
                        .collect()
                };
                let truth_choice = choices(&mut rng);
                let default_choice = choices(&mut rng);
                let problem = CleaningProblem {
                    dataset,
                    config: CpConfig::new(k),
                    val_x: std::sync::Arc::new(val.into_iter().map(|v| vec![v as f64]).collect()),
                    truth_choice,
                    default_choice,
                };
                (problem, seed)
            })
    })
}

/// Each dirty row pinned to a random candidate with probability ~1/2.
fn random_pins(problem: &CleaningProblem, rng: &mut StdRng) -> Pins {
    let ds = &problem.dataset;
    let mut pins = Pins::none(ds.len());
    for i in 0..ds.len() {
        if ds.set_size(i) > 1 && rng.gen_bool(0.5) {
            pins.pin(i, rng.gen_range(0..ds.set_size(i)));
        }
    }
    pins
}

fn opts(n_threads: usize) -> RunOptions {
    RunOptions {
        max_cleaned: None,
        n_threads,
        record_every: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Query-level equivalence: summary dispatch == explicit summary fold
    /// == merged Possibility scan == single-process MM, for every shard
    /// count, under random pin masks, at every validation point.
    #[test]
    fn summary_path_equals_merged_scan_and_minmax((problem, seed) in arb_binary_instance()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5e1f);
        let ds = &problem.dataset;
        let cfg = &problem.config;
        for round in 0..3 {
            let pins = if round == 0 {
                Pins::none(ds.len())
            } else {
                random_pins(&problem, &mut rng)
            };
            for t in problem.val_x.iter() {
                let full_idx = SimilarityIndex::build(ds, cfg.kernel, t);
                let mm = certain_label_minmax(ds, cfg, &full_idx, &pins);
                for n_shards in SHARD_COUNTS {
                    let shards = ds.partition(n_shards);
                    let indexes = build_shard_indexes(&shards, cfg.kernel, t);
                    let shard_pins = local_pins(&shards, &pins);
                    let dispatched = certain_label_sharded_with_indexes(
                        &shards, &indexes, &shard_pins, cfg,
                    );
                    let scanned = certain_label_sharded_merged_scan(
                        &shards, &indexes, &shard_pins, cfg,
                    );
                    let summaries = extreme_summaries(&shards, &indexes, &shard_pins, cfg);
                    let folded = certain_label_from_summaries(&summaries);
                    prop_assert_eq!(
                        dispatched, mm,
                        "summary dispatch vs MM, n_shards={}", n_shards
                    );
                    prop_assert_eq!(
                        folded, mm,
                        "summary fold vs MM, n_shards={}", n_shards
                    );
                    prop_assert_eq!(
                        scanned, mm,
                        "possibility scan vs MM, n_shards={}", n_shards
                    );
                }
            }
        }
    }

    /// Session-level equivalence: a sharded session's incremental status —
    /// now answered by rank-merged summaries — stays identical to the
    /// single-process session's (which takes the MM route) after every
    /// step of arbitrary cleaning orders.
    #[test]
    fn sharded_status_matches_single_session_on_binary_problems(
        (problem, seed) in arb_binary_instance()
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb1a5);
        let mut order = problem.dirty_rows();
        order.shuffle(&mut rng);
        for n_shards in SHARD_COUNTS {
            let mut single = CleaningSession::new(&problem, &opts(1));
            let mut sharded = ShardedSession::new(&problem, n_shards, &opts(1 + (seed % 2) as usize));
            prop_assert_eq!(
                sharded.status(),
                single.status(),
                "fresh session, n_shards={}",
                n_shards
            );
            for &row in &order {
                single.clean(row);
                sharded.clean(row);
                prop_assert_eq!(
                    sharded.status(),
                    single.status(),
                    "after cleaning row {}, n_shards={}",
                    row,
                    n_shards
                );
            }
        }
    }
}
