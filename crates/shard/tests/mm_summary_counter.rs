//! Dispatch accounting for the binary-Q1 extreme-summary fast path.
//!
//! A status sweep over a **binary** sharded session must never touch the
//! polynomial machinery: the summary path builds extreme-world top-K lists
//! and merges them by rank, so `cp_core::poly::tree_build_count` — the
//! tally-tree twin of the similarity-index build counter — must not move
//! across session construction and a whole fixed-order status-update run.
//! A 3-label problem is the control: its status checks take the merged
//! `Possibility` scan, which *does* build trees, proving the counter (and
//! the dispatch) actually discriminate.
//!
//! Lives in its own integration-test binary with a single `#[test]`
//! because the counter is process-wide.

use cp_clean::{CleaningProblem, CleaningSession, RunOptions};
use cp_core::poly::tree_build_count;
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
use cp_shard::ShardedSession;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Synthetic problem with `n_labels` classes: label clusters on a line plus
/// dirty rows straddling the boundaries, so status updates stay non-trivial
/// for several cleaning steps.
fn synthetic_problem(
    seed: u64,
    n_labels: usize,
    n_clean: usize,
    n_dirty: usize,
) -> CleaningProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut examples = Vec::new();
    for i in 0..n_clean {
        let label = i % n_labels;
        let center = 10.0 * label as f64;
        examples.push(IncompleteExample::complete(
            vec![center + rng.gen_range(-1.5..1.5)],
            label,
        ));
    }
    let span = 10.0 * (n_labels - 1) as f64;
    for _ in 0..n_dirty {
        let label = rng.gen_range(0..n_labels);
        let candidates = vec![
            vec![rng.gen_range(0.0..span.max(1.0))],
            vec![rng.gen_range(0.0..span.max(1.0))],
        ];
        examples.push(IncompleteExample::incomplete(candidates, label));
    }
    let n = examples.len();
    let dataset = IncompleteDataset::new(examples, n_labels).unwrap();
    let mut truth_choice = vec![None; n];
    let mut default_choice = vec![None; n];
    for i in n_clean..n {
        truth_choice[i] = Some(0);
        default_choice[i] = Some(1);
    }
    CleaningProblem {
        dataset,
        config: CpConfig::new(3),
        val_x: std::sync::Arc::new(
            (0..6)
                .map(|_| vec![rng.gen_range(0.0..span.max(1.0))])
                .collect(),
        ),
        truth_choice,
        default_choice,
    }
}

#[test]
fn binary_status_sweeps_build_zero_tally_trees() {
    let problem = synthetic_problem(42, 2, 14, 8);
    let order = problem.dirty_rows();
    let opts = RunOptions {
        max_cleaned: None,
        n_threads: 2,
        record_every: 1,
    };

    for n_shards in [1usize, 2, 4] {
        // a single-process twin cleaned in lockstep keeps the fast path
        // honest: skipping the trees must not change a single status bit
        let mut single = CleaningSession::new(&problem, &opts);

        let before = tree_build_count();
        let mut session = ShardedSession::new(&problem, n_shards, &opts);
        assert_eq!(session.status(), single.status(), "fresh status");
        for &row in &order {
            session.clean(row);
            single.clean(row);
            assert_eq!(session.status(), single.status(), "after row {row}");
        }
        let built = tree_build_count() - before;
        assert_eq!(
            built, 0,
            "a binary {n_shards}-shard status sweep must dispatch to the \
             extreme-summary path and build zero tally trees"
        );
    }

    // dispatch control: with |Y| = 3 the same sweep must take the merged
    // Possibility scan, which builds one tree per label per shard scan
    let multiclass = synthetic_problem(43, 3, 15, 6);
    let before = tree_build_count();
    let mut session = ShardedSession::new(&multiclass, 2, &opts);
    if let Some(&row) = multiclass.dirty_rows().first() {
        session.clean(row);
    }
    assert!(
        tree_build_count() - before > 0,
        "a 3-label status sweep must still run the tree-backed merged scan"
    );
}
