//! Incremental-vs-naive greedy selection lockstep for [`ShardedSession`],
//! across shard counts `{1, 2, 3, 7}` (7 exceeds some instances' row count,
//! exercising the partition clamp).
//!
//! `select_next` runs the shared incremental loop (epoch-keyed score cache,
//! top-K relevance substitution, entropy-bound pruning) over the merged
//! shard scans; `select_next_naive` is the from-scratch routed reference.
//! The optimization contract is **bit-identical choices** at every step of
//! every trajectory — greedy or arbitrary — for every shard count.

use cp_clean::{CleaningProblem, RunOptions};
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
use cp_shard::ShardedSession;
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// A random small cleaning problem (same family as the shard equivalence
/// suite): 1-D candidate grids with frequent similarity ties, 2–3 labels,
/// K in 1..=3, plus a seed for the derived randomness.
fn arb_instance() -> impl Strategy<Value = (CleaningProblem, u64)> {
    (2usize..=3, 4usize..=6, 1usize..=3).prop_flat_map(|(n_labels, n, k)| {
        let example =
            (proptest::collection::vec(-9i32..9, 1..=3), 0..n_labels).prop_map(|(grid, label)| {
                let candidates: Vec<Vec<f64>> = grid.into_iter().map(|g| vec![g as f64]).collect();
                if candidates.len() == 1 {
                    IncompleteExample::complete(candidates.into_iter().next().unwrap(), label)
                } else {
                    IncompleteExample::incomplete(candidates, label)
                }
            });
        (
            proptest::collection::vec(example, n..=n),
            proptest::collection::vec(-9i32..9, 1..=3),
            Just(n_labels),
            Just(k),
            0u64..u64::MAX,
        )
            .prop_map(move |(examples, val, n_labels, k, seed)| {
                let dataset = IncompleteDataset::new(examples, n_labels).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let choices = |rng: &mut StdRng| -> Vec<Option<usize>> {
                    (0..dataset.len())
                        .map(|i| {
                            let m = dataset.set_size(i);
                            (m > 1).then(|| rng.gen_range(0..m))
                        })
                        .collect()
                };
                let truth_choice = choices(&mut rng);
                let default_choice = choices(&mut rng);
                let problem = CleaningProblem {
                    dataset,
                    config: CpConfig::new(k),
                    val_x: std::sync::Arc::new(val.into_iter().map(|v| vec![v as f64]).collect()),
                    truth_choice,
                    default_choice,
                };
                (problem, seed)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At every step of a randomly perturbed cleaning trajectory, the
    /// incremental scorer picks the row the naive routed scorer picks, for
    /// every shard count — including off the greedy path, where the cache
    /// survives pins it did not choose.
    #[test]
    fn incremental_selection_matches_naive((problem, seed) in arb_instance()) {
        let opts = RunOptions { max_cleaned: None, n_threads: 1, record_every: 1 };
        for n_shards in SHARD_COUNTS {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5a2d);
            let mut session = ShardedSession::new(&problem, n_shards, &opts);
            let mut step = 0usize;
            loop {
                let remaining = session.remaining();
                if remaining.is_empty() {
                    break;
                }
                let naive = session.select_next_naive(&remaining);
                let incremental = session.select_next(&remaining);
                prop_assert_eq!(
                    incremental, naive,
                    "step {} diverged, n_shards={}", step, n_shards
                );
                // a warm-cache re-query of the unchanged step is identical
                prop_assert_eq!(
                    session.select_next(&remaining), naive,
                    "warm re-query, step {}, n_shards={}", step, n_shards
                );
                // follow the greedy choice half the time, a random row otherwise
                let row = if rng.gen_bool(0.5) {
                    naive
                } else {
                    remaining[rng.gen_range(0..remaining.len())]
                };
                session.clean(row);
                step += 1;
            }
        }
    }
}
