//! Index-build accounting for the sharded session engine — the sharded
//! extension of `cp-clean`'s `build_counter` test.
//!
//! Opening a `ShardedSession` gives every shard its own partition-local
//! `ValIndexCache`: each of the `n_shards` shard sessions builds one
//! `SimilarityIndex` per validation point over *its* sub-dataset, and no
//! further builds may happen for the rest of the run — every merged scan
//! (status refreshes and the greedy selection's pinned evaluations) reuses
//! the cached per-shard indexes.
//!
//! Lives in its own integration-test binary with a single `#[test]` because
//! `cp_core::similarity::build_count` is a process-wide counter.

use cp_clean::{CleaningProblem, RunOptions};
use cp_core::similarity::build_count;
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
use cp_shard::ShardedSession;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Same synthetic family as the cp-clean build-counter test: two 1-D label
/// clusters plus dirty rows straddling the boundary, so runs take several
/// iterations.
fn synthetic_problem(
    seed: u64,
    n_clean: usize,
    n_dirty: usize,
    n_val: usize,
) -> (CleaningProblem, Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut examples = Vec::new();
    for i in 0..n_clean {
        let label = i % 2;
        let center = if label == 0 { 0.0 } else { 10.0 };
        examples.push(IncompleteExample::complete(
            vec![center + rng.gen_range(-1.5..1.5)],
            label,
        ));
    }
    for _ in 0..n_dirty {
        let label = rng.gen_range(0usize..2);
        let candidates = vec![
            vec![rng.gen_range(0.0..10.0)],
            vec![rng.gen_range(0.0..10.0)],
        ];
        examples.push(IncompleteExample::incomplete(candidates, label));
    }
    let n = examples.len();
    let dataset = IncompleteDataset::new(examples, 2).unwrap();
    let mut truth_choice = vec![None; n];
    let mut default_choice = vec![None; n];
    for i in n_clean..n {
        truth_choice[i] = Some(0);
        default_choice[i] = Some(1);
    }
    let problem = CleaningProblem {
        dataset,
        config: CpConfig::new(3),
        val_x: std::sync::Arc::new((0..n_val).map(|_| vec![rng.gen_range(0.0..10.0)]).collect()),
        truth_choice,
        default_choice,
    };
    let test_x: Vec<Vec<f64>> = (0..n_val).map(|_| vec![rng.gen_range(0.0..10.0)]).collect();
    let test_y: Vec<usize> = (0..n_val).map(|_| rng.gen_range(0usize..2)).collect();
    (problem, test_x, test_y)
}

#[test]
fn each_shard_builds_its_partition_local_indexes_exactly_once_per_run() {
    let (problem, test_x, test_y) = synthetic_problem(42, 16, 10, 8);
    let opts = RunOptions {
        max_cleaned: None,
        n_threads: 2,
        record_every: 1,
    };

    for n_shards in [1usize, 2, 4] {
        // session construction: one partition-local index per shard per
        // validation point, built concurrently across shards
        let before = build_count();
        let mut session = ShardedSession::new(&problem, n_shards, &opts);
        let construction_builds = build_count() - before;
        assert_eq!(
            construction_builds,
            (session.n_shards() * problem.val_x.len()) as u64,
            "opening a {n_shards}-shard session must build exactly \
             n_shards × |val| partition-local indexes"
        );

        // the entire greedy run — selection scans, pinned entropy
        // evaluations, status refreshes — reuses the cached shard indexes
        let before = build_count();
        let run = session.run_to_convergence(&test_x, &test_y);
        let run_builds = build_count() - before;
        assert!(
            run.n_cleaned() >= 2,
            "workload must be multi-iteration (cleaned {})",
            run.n_cleaned()
        );
        assert!(run.converged);
        assert_eq!(
            run_builds,
            0,
            "a {n_shards}-shard run must never rebuild a similarity index \
             ({} iterations reused the cached ones)",
            run.n_cleaned()
        );
    }
}
