//! Shard-count invariance of the partition-parallel engine.
//!
//! Partitioning is an implementation detail: for **every** shard count, the
//! sharded engine must give the same answers as the single-process one —
//!
//! * `ShardedSession`'s global CP status vector equals `CleaningSession`'s
//!   (and the from-scratch `val_cp_status` oracle) after every step of
//!   arbitrary random cleaning orders;
//! * greedy selection picks the same row at every step, so whole greedy
//!   runs clean in the same order;
//! * `run_order` produces the same cleaned order and convergence flag;
//! * the merged factor scan returns exactly the single-process Q2 counts
//!   for every `Q2Algorithm` (graceful fallbacks included) under arbitrary
//!   pin masks — bit-for-bit in the exact `u128` semiring, and within float
//!   tolerance in probability space.
//!
//! Instances cover 2-label problems (where the single-process certain-label
//! dispatch takes the MinMax route the sharded engine replaces with the
//! Possibility-semiring scan) and 3-label ones (the SS-DC route), all
//! `Q2Algorithm`s, random pin masks, and shard counts `{1, 2, 3, 7}` —
//! 7 exceeds the row count of some instances, exercising the clamp.

use cp_clean::{val_cp_status, CleaningProblem, CleaningSession, RunOptions};
use cp_core::{
    q2_batch_with_algorithm, CpConfig, IncompleteDataset, IncompleteExample, Pins, Q2Algorithm,
    Q2Result,
};
use cp_shard::{build_shard_indexes, local_pins, q2_sharded_with_algorithm, ShardedSession};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

const ALL_ALGORITHMS: [Q2Algorithm; 5] = [
    Q2Algorithm::Auto,
    Q2Algorithm::BruteForce,
    Q2Algorithm::SortScan,
    Q2Algorithm::SortScanTree,
    Q2Algorithm::SortScanMultiClass,
];

/// A random small cleaning problem (same family as the cp-clean
/// incrementality suite): 1-D candidate grids with frequent similarity
/// ties, 2–3 labels, K in 1..=3, plus a seed for the derived randomness.
fn arb_instance() -> impl Strategy<Value = (CleaningProblem, u64)> {
    (2usize..=3, 4usize..=6, 1usize..=3).prop_flat_map(|(n_labels, n, k)| {
        let example =
            (proptest::collection::vec(-9i32..9, 1..=3), 0..n_labels).prop_map(|(grid, label)| {
                let candidates: Vec<Vec<f64>> = grid.into_iter().map(|g| vec![g as f64]).collect();
                if candidates.len() == 1 {
                    IncompleteExample::complete(candidates.into_iter().next().unwrap(), label)
                } else {
                    IncompleteExample::incomplete(candidates, label)
                }
            });
        (
            proptest::collection::vec(example, n..=n),
            proptest::collection::vec(-9i32..9, 1..=3),
            Just(n_labels),
            Just(k),
            0u64..u64::MAX,
        )
            .prop_map(move |(examples, val, n_labels, k, seed)| {
                let dataset = IncompleteDataset::new(examples, n_labels).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let choices = |rng: &mut StdRng| -> Vec<Option<usize>> {
                    (0..dataset.len())
                        .map(|i| {
                            let m = dataset.set_size(i);
                            (m > 1).then(|| rng.gen_range(0..m))
                        })
                        .collect()
                };
                let truth_choice = choices(&mut rng);
                let default_choice = choices(&mut rng);
                let problem = CleaningProblem {
                    dataset,
                    config: CpConfig::new(k),
                    val_x: std::sync::Arc::new(val.into_iter().map(|v| vec![v as f64]).collect()),
                    truth_choice,
                    default_choice,
                };
                (problem, seed)
            })
    })
}

/// A pin mask not restricted to pinned-to-truth: each dirty row is pinned to
/// a random candidate with probability ~1/2.
fn random_pins(problem: &CleaningProblem, rng: &mut StdRng) -> Pins {
    let ds = &problem.dataset;
    let mut pins = Pins::none(ds.len());
    for i in 0..ds.len() {
        if ds.set_size(i) > 1 && rng.gen_bool(0.5) {
            pins.pin(i, rng.gen_range(0..ds.set_size(i)));
        }
    }
    pins
}

fn opts(n_threads: usize) -> RunOptions {
    RunOptions {
        max_cleaned: None,
        n_threads,
        record_every: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Status-vector invariance along arbitrary cleaning trajectories: for
    /// every shard count, the sharded session's global status equals the
    /// single session's and the from-scratch oracle after every step.
    #[test]
    fn status_matches_single_session_across_shard_counts((problem, seed) in arb_instance()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51a2);
        let mut order = problem.dirty_rows();
        order.shuffle(&mut rng);
        // alternate thread budgets so both the serialized and the fanned-out
        // shard paths are exercised regardless of the CP_THREADS ambient cap
        let sharded_opts = opts(1 + (seed % 3) as usize);
        for n_shards in SHARD_COUNTS {
            let mut single = CleaningSession::new(&problem, &opts(1));
            let mut sharded = ShardedSession::new(&problem, n_shards, &sharded_opts);
            prop_assert!(sharded.n_shards() <= problem.dataset.len());
            prop_assert_eq!(
                sharded.status(),
                single.status(),
                "fresh session, n_shards={}",
                n_shards
            );
            for &row in &order {
                single.clean(row);
                sharded.clean(row);
                prop_assert_eq!(
                    sharded.status(),
                    single.status(),
                    "after cleaning row {}, n_shards={}",
                    row,
                    n_shards
                );
                prop_assert_eq!(
                    sharded.status().to_vec(),
                    val_cp_status(&problem, sharded.state().pins(), 1),
                    "oracle disagrees after row {}, n_shards={}",
                    row,
                    n_shards
                );
            }
            prop_assert!(sharded.converged(), "single world left ⇒ converged");
        }
    }

    /// Greedy-selection invariance: stepping a sharded session and a single
    /// session in lockstep cleans the same rows in the same order, for every
    /// shard count.
    #[test]
    fn greedy_steps_match_single_session((problem, _seed) in arb_instance()) {
        for n_shards in SHARD_COUNTS {
            let mut single = CleaningSession::new(&problem, &opts(1));
            let mut sharded = ShardedSession::new(&problem, n_shards, &opts(1));
            loop {
                let expect = single.step();
                let got = sharded.step();
                prop_assert_eq!(
                    got, expect,
                    "greedy step {} diverged, n_shards={}",
                    single.n_cleaned(), n_shards
                );
                if expect.is_none() {
                    break;
                }
            }
            prop_assert_eq!(sharded.converged(), single.converged());
            prop_assert_eq!(sharded.status(), single.status());
        }
    }

    /// `run_order` invariance, including under a cleaning budget.
    #[test]
    fn run_order_matches_single_session((problem, seed) in arb_instance()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xacce);
        let mut order = problem.dirty_rows();
        order.shuffle(&mut rng);
        let budget = if order.is_empty() { None } else { Some(rng.gen_range(0..=order.len())) };
        let run_opts = RunOptions { max_cleaned: budget, ..opts(1) };
        let test_x = problem.val_x.clone();
        let test_y = vec![0usize; test_x.len()];
        let single = CleaningSession::new(&problem, &run_opts)
            .run_order(&order, &test_x, &test_y);
        for n_shards in SHARD_COUNTS {
            let run = ShardedSession::new(&problem, n_shards, &run_opts)
                .run_order(&order, &test_x, &test_y);
            prop_assert_eq!(&run.order, &single.order, "n_shards={}", n_shards);
            prop_assert_eq!(run.converged, single.converged);
            prop_assert_eq!(run.curve.len(), single.curve.len());
        }
    }

    /// The merged factor scan equals every single-process Q2 algorithm under
    /// arbitrary pin masks — exactly in `u128`, within tolerance in `f64`.
    #[test]
    fn sharded_q2_matches_every_algorithm((problem, seed) in arb_instance()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
        let ds = &problem.dataset;
        let cfg = &problem.config;
        for round in 0..2 {
            let pins = if round == 0 { Pins::none(ds.len()) } else { random_pins(&problem, &mut rng) };
            for n_shards in SHARD_COUNTS {
                let shards = ds.partition(n_shards);
                let shard_pins = local_pins(&shards, &pins);
                let pin_refs: Vec<&Pins> = shard_pins.iter().collect();
                for (v, t) in problem.val_x.iter().enumerate() {
                    let indexes = build_shard_indexes(&shards, cfg.kernel, t);
                    let index_refs: Vec<&cp_core::SimilarityIndex> = indexes.iter().collect();
                    for algo in ALL_ALGORITHMS {
                        let single: Vec<Q2Result<u128>> =
                            q2_batch_with_algorithm(ds, cfg, std::slice::from_ref(t), &pins, algo);
                        let sharded: Q2Result<u128> = q2_sharded_with_algorithm(
                            &shards, &index_refs, &pin_refs, cfg, algo,
                        );
                        prop_assert_eq!(
                            &sharded.counts, &single[0].counts,
                            "val {} algo {:?} n_shards={}", v, algo, n_shards
                        );
                        prop_assert_eq!(sharded.total, single[0].total);
                    }
                    // probability space within tolerance
                    let single_p: Vec<Q2Result<f64>> = q2_batch_with_algorithm(
                        ds, cfg, std::slice::from_ref(t), &pins, Q2Algorithm::SortScanTree,
                    );
                    let sharded_p: Q2Result<f64> = q2_sharded_with_algorithm(
                        &shards, &index_refs, &pin_refs, cfg, Q2Algorithm::SortScanTree,
                    );
                    for (a, b) in sharded_p.probabilities().iter().zip(single_p[0].probabilities()) {
                        prop_assert!((a - b).abs() < 1e-9, "val {} n_shards={}", v, n_shards);
                    }
                }
            }
        }
    }
}
