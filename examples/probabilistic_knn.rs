//! Q2 as probabilistic-database inference (§2.1's "Connections to
//! Probabilistic Databases"), with non-uniform candidate priors.
//!
//! An incomplete dataset whose candidates carry probabilities is a block
//! tuple-independent probabilistic database; Q2 then computes the exact
//! posterior of the KNN prediction. Run:
//!
//! ```text
//! cargo run --release --example probabilistic_knn
//! ```

use cpclean::core::prior::q2_weighted;
use cpclean::core::{q2_probabilities, CpConfig, IncompleteDataset, IncompleteExample};

fn main() {
    // A sensor reading was corrupted: the cleaning model proposes three
    // repairs with confidences 0.7 / 0.2 / 0.1.
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::complete(vec![0.0, 0.0], 0),
            IncompleteExample::complete(vec![1.0, 0.5], 0),
            IncompleteExample::incomplete(
                vec![vec![4.0, 4.0], vec![0.79, 0.41], vec![6.0, 6.0]],
                1,
            ),
            IncompleteExample::complete(vec![5.0, 5.0], 1),
        ],
        2,
    )
    .expect("valid dataset");
    let cfg = CpConfig::new(1);
    let t = vec![0.8, 0.4]; // a test point in class 0's region

    // Uniform prior (the paper's counting semantics): each repair equally
    // likely.
    let uniform = q2_probabilities(&dataset, &cfg, &t);
    println!("uniform prior:    P(label) = {uniform:?}");

    // Non-uniform prior from the cleaning model's confidences.
    let priors = vec![
        vec![1.0],
        vec![1.0],
        vec![0.7, 0.2, 0.1], // repair confidences
        vec![1.0],
    ];
    let weighted = q2_weighted(&dataset, &cfg, &t, priors.clone());
    println!("cleaner's prior:  P(label) = {weighted:?}");

    // Under the uniform prior the dubious repair (0.79, 0.41) — which would
    // steal the neighborhood with label 1 — carries weight 1/3; under the
    // cleaner's prior only 0.2. The posterior over predictions shifts
    // accordingly.
    assert!(weighted[1] < uniform[1]);

    // Sharpening the prior toward the trusted repair makes the prediction
    // effectively certain.
    let confident = vec![vec![1.0], vec![1.0], vec![0.98, 0.01, 0.01], vec![1.0]];
    let sharp = q2_weighted(&dataset, &cfg, &t, confident);
    println!("near-certain:     P(label) = {sharp:?}");
    assert!(sharp[0] > 0.95);

    println!("\nsame scan, different mass model: counting worlds vs integrating a prior.");
}
