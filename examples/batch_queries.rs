//! Batch evaluation: a whole test set of CP queries in one parallel pass.
//!
//! The per-point API answers "is *this* test point certainly predicted?";
//! serving and evaluation ask that question for a whole batch. The batch
//! engine fans test points out across cores (one similarity index built and
//! reused per point) and aggregates the answers. Run:
//!
//! ```text
//! cargo run --release --example batch_queries
//! ```

use cpclean::core::{evaluate_batch, q1_batch, q2_batch, CpConfig, Pins};
use cpclean::core::{IncompleteDataset, IncompleteExample};

fn main() {
    // Figure 6's incomplete training set: 8 possible worlds.
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::incomplete(vec![vec![0.0], vec![8.0]], 1),
            IncompleteExample::incomplete(vec![vec![2.0], vec![4.0]], 1),
            IncompleteExample::incomplete(vec![vec![6.0], vec![9.0]], 0),
        ],
        2,
    )
    .expect("valid dataset");
    let cfg = CpConfig::new(1); // 1-NN

    // A batch of test points along the line.
    let points: Vec<Vec<f64>> = (-2..=12).map(|x| vec![x as f64]).collect();

    // Q2 for the whole batch: exact world counts per label, in parallel.
    let counts = q2_batch::<u128>(&dataset, &cfg, &points);
    println!("Q2 over {} test points (worlds per label):", points.len());
    for (t, r) in points.iter().zip(&counts) {
        println!("  t={:>5}: {:?} / {}", t[0], r.counts, r.total);
    }

    // Q1 for one label across the batch.
    let certain_of_1 = q1_batch(&dataset, &cfg, &points, 1);
    let n1 = certain_of_1.iter().filter(|&&c| c).count();
    println!(
        "\nQ1: {n1}/{} points certainly predict label 1",
        points.len()
    );

    // The aggregate view the evaluation loops consume.
    let summary = evaluate_batch(&dataset, &cfg, &points, &Pins::none(dataset.len()));
    println!("\nbatch summary:");
    println!("  fraction certain : {:.2}", summary.fraction_certain());
    println!("  mean entropy     : {:.3} bits", summary.mean_entropy_bits);
    println!("  mean label probs : {:?}", summary.mean_probabilities());

    // Sanity: the middle of the line is where predictions stay uncertain.
    assert!(summary.fraction_certain() > 0.0);
    assert!(summary.fraction_certain() < 1.0);
}
