//! Quickstart: certain predictions on the paper's own worked example.
//!
//! Reproduces Figure 6 (§3.1.2): three training examples with two candidate
//! values each — 8 possible worlds — and a 1-NN classifier. The counting
//! query must report 6 worlds predicting label 0 and 2 predicting label 1,
//! and the checking query must report that nothing is certain yet. Run:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cpclean::core::{
    certain_label, q2, q2_probabilities, CpConfig, IncompleteDataset, IncompleteExample,
};

fn main() {
    // The Figure 6 layout on a line, test point at 10.0 (similarity =
    // negative squared distance, so larger coordinates are more similar):
    //   x11=0 < x21=2 < x22=4 < x31=6 < x12=8 < x32=9   (ascending similarity)
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::incomplete(vec![vec![0.0], vec![8.0]], 1), // C1, y=1
            IncompleteExample::incomplete(vec![vec![2.0], vec![4.0]], 1), // C2, y=1
            IncompleteExample::incomplete(vec![vec![6.0], vec![9.0]], 0), // C3, y=0
        ],
        2,
    )
    .expect("valid dataset");
    let test_point = vec![10.0];
    let cfg = CpConfig::new(1); // 1-NN, Euclidean

    println!(
        "incomplete dataset: {} examples, {} possible worlds",
        dataset.len(),
        dataset.world_count()
    );

    // Q2 — counting query (Definition 5), exact counts
    let counts = q2::<u128>(&dataset, &cfg, &test_point);
    println!("\nQ2 (counting): how many worlds predict each label?");
    for (label, count) in counts.counts.iter().enumerate() {
        println!("  label {label}: {count} / {} worlds", counts.total);
    }
    assert_eq!(counts.counts, vec![6, 2], "Figure 6's result is 6 / 2");

    // the same query as probabilities (what CPClean's entropy consumes)
    let probs = q2_probabilities(&dataset, &cfg, &test_point);
    println!("  as probabilities: {probs:?}");

    // Q1 — checking query (Definition 4)
    println!("\nQ1 (checking): is any label certainly predicted?");
    match certain_label(&dataset, &cfg, &test_point) {
        Some(label) => println!("  yes — label {label} wins in every world"),
        None => println!("  no — the prediction still depends on the unknown values"),
    }
    assert_eq!(certain_label(&dataset, &cfg, &test_point), None);

    // With K = 3 every example votes in every world: labels {1,1,0} make
    // label 1 certain regardless of the missing values (Figure B.1).
    let cfg3 = CpConfig::new(3);
    let certain = certain_label(&dataset, &cfg3, &test_point);
    println!("\nwith K = 3 instead: certain label = {certain:?}");
    assert_eq!(certain, Some(1));
    println!("\ncleaning those cells cannot change the 3-NN prediction — don't pay for it!");
}
