//! Sharded cleaning sessions: one dataset, many partition-local workers.
//!
//! Partitions an incomplete training set into row-range shards, opens a
//! `ShardedSession` (one partition-local `CleaningSession` per shard), and
//! shows that every global answer — CP status, greedy selection, the whole
//! cleaning trajectory — is identical to the single-process engine's for
//! every shard count, while each shard only ever scans its own candidate
//! sets. Run:
//!
//! ```text
//! cargo run --release --example sharded_session
//! ```

use cpclean::clean::{CleaningProblem, CleaningSession, RunOptions};
use cpclean::core::{CpConfig, IncompleteDataset, IncompleteExample, Pins};
use cpclean::shard::{q2_sharded, ShardedSession};

/// A small two-cluster problem with dirty rows straddling the boundary.
fn example_problem() -> CleaningProblem {
    let mut examples = Vec::new();
    let mut truth_choice = Vec::new();
    let mut default_choice = Vec::new();
    for i in 0..12 {
        let label = i % 2;
        let center = if label == 0 { 0.0 } else { 10.0 };
        examples.push(IncompleteExample::complete(
            vec![center + (i as f64) * 0.1],
            label,
        ));
        truth_choice.push(None);
        default_choice.push(None);
    }
    for i in 0..6 {
        let label = i % 2;
        let a = 2.0 + i as f64;
        let b = 8.0 - i as f64;
        examples.push(IncompleteExample::incomplete(vec![vec![a], vec![b]], label));
        truth_choice.push(Some(0));
        default_choice.push(Some(1));
    }
    let dataset = IncompleteDataset::new(examples, 2).expect("valid dataset");
    CleaningProblem {
        dataset,
        config: CpConfig::new(3),
        val_x: std::sync::Arc::new((0..8).map(|v| vec![1.2 * v as f64]).collect()),
        truth_choice,
        default_choice,
    }
}

fn main() {
    let problem = example_problem();
    let opts = RunOptions::default();
    let n = problem.dataset.len();
    println!(
        "problem: {} rows ({} dirty), {} validation points, 10^{:.1} possible worlds\n",
        n,
        problem.dirty_rows().len(),
        problem.val_x.len(),
        problem.dataset.world_count_log10(),
    );

    // a single Q2 query, partition-parallel: per-shard factor summaries
    // merged at the coordinator — exact counts, any shard count
    let t = vec![5.0];
    let single = cpclean::core::q2::<u128>(&problem.dataset, &problem.config, &t);
    println!("Q2 at t = {t:?} (worlds per label):");
    for n_shards in [1usize, 2, 4] {
        let shards = problem.dataset.partition(n_shards);
        let sharded = q2_sharded::<u128>(&shards, &problem.config, &t, &Pins::none(n));
        println!(
            "  {n_shards} shard(s): {:?} / {}  (single-process: {:?})",
            sharded.counts, sharded.total, single.counts
        );
        assert_eq!(sharded.counts, single.counts, "factor merge must be exact");
    }

    // the sharded cleaning engine: same surface, same trajectory
    let test_x: Vec<Vec<f64>> = (0..8).map(|v| vec![0.9 + 1.1 * v as f64]).collect();
    let test_y: Vec<usize> = (0..8).map(|v| usize::from(v >= 4)).collect();
    let single_run = CleaningSession::new(&problem, &opts).run_to_convergence(&test_x, &test_y);
    println!(
        "\ngreedy CPClean, single process: cleaned {:?}",
        single_run.order
    );
    for n_shards in [2usize, 4] {
        let mut session = ShardedSession::new(&problem, n_shards, &opts);
        println!(
            "{} shards (rows per shard: {:?}), {}/{} certain before cleaning",
            session.n_shards(),
            session.shards().iter().map(|s| s.len()).collect::<Vec<_>>(),
            session.n_certain(),
            session.status().len(),
        );
        let run = session.run_to_convergence(&test_x, &test_y);
        println!(
            "  cleaned {:?} -> converged={} (identical to single: {})",
            run.order,
            run.converged,
            run.order == single_run.order,
        );
        assert_eq!(
            run.order, single_run.order,
            "sharding must not change cleaning"
        );
    }
    println!("\nevery shard only ever scanned its own partition; only per-label");
    println!("polynomial factors and CP status bits crossed shard boundaries");
}
