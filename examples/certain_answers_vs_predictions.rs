//! The Figure 1 narrative: from *certain answers* over a Codd table to
//! *certain predictions* over the induced possible worlds.
//!
//! A Codd table with one NULL age induces one possible world per candidate
//! value. A SQL-style filter (`age < 30`) has a *certain answer* set — the
//! tuples returned in every world. A KNN classifier trained per world has a
//! *certain prediction* — a test tuple whose label agrees across worlds.
//! Run:
//!
//! ```text
//! cargo run --release --example certain_answers_vs_predictions
//! ```

use cpclean::core::{certain_label, q2, CpConfig, IncompleteDataset, IncompleteExample};
use cpclean::table::{Column, ColumnType, Schema, Table, Value};

fn main() {
    // ── the Codd table of Figure 1 ──────────────────────────────────────
    let schema = Schema::new(vec![
        Column::new("name", ColumnType::Categorical),
        Column::new("age", ColumnType::Numeric),
    ]);
    let table = Table::new(
        schema,
        vec![
            vec![Value::Cat("John".into()), Value::Num(32.0)],
            vec![Value::Cat("Anna".into()), Value::Num(29.0)],
            vec![Value::Cat("Kevin".into()), Value::Null], // age unknown
        ],
    );
    println!("Codd table (@ = NULL):\n{table}");

    // candidate repairs for Kevin's age, as in the figure: 1, 2, or 30
    let candidates = [1.0, 2.0, 30.0];

    // ── certain answers for `SELECT * WHERE age < 30` ───────────────────
    println!("query: SELECT name FROM person WHERE age < 30\n");
    let mut always_in: Vec<&str> = vec!["John", "Anna", "Kevin"];
    for &age in &candidates {
        let mut world_answer = Vec::new();
        for row in table.rows() {
            let a = row[1].as_num().unwrap_or(age); // NULL takes the candidate
            if a < 30.0 {
                world_answer.push(row[0].as_cat().unwrap());
            }
        }
        println!("  world(age={age:>2}): answer = {world_answer:?}");
        always_in.retain(|n| world_answer.contains(n));
    }
    println!("  certain answer (in every world): {always_in:?}");
    assert_eq!(always_in, vec!["Anna"]);

    // ── certain predictions for a 1-NN over the same worlds ─────────────
    // label: does the person qualify for the young-adult rate (age < 30)?
    // John (32) -> no (0), Anna (29) -> yes (1), Kevin -> observed label yes
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::complete(vec![32.0], 0),
            IncompleteExample::complete(vec![29.0], 1),
            IncompleteExample::incomplete(candidates.iter().map(|&a| vec![a]).collect(), 1),
        ],
        2,
    )
    .expect("valid dataset");
    let cfg = CpConfig::new(1);

    println!(
        "\n1-NN prediction for a new 25-year-old across the {} worlds:",
        dataset.world_count()
    );
    let q = q2::<u128>(&dataset, &cfg, &[25.0]);
    println!(
        "  worlds per label: {:?} (certain: {:?})",
        q.counts,
        q.certain_label()
    );
    // Kevin's candidates 1/2/30 are all nearer to 25 than John (32) or Anna
    // (29)? No — age 1 and 2 are far; the nearest neighbor flips between
    // Kevin(30) and Anna(29) — but both have label 1, so the prediction is
    // certain even though the nearest *neighbor* is not!
    assert_eq!(q.certain_label(), Some(1));

    println!("\nand for a 5-year-old:");
    let q5 = q2::<u128>(&dataset, &cfg, &[5.0]);
    println!(
        "  worlds per label: {:?} (certain: {:?})",
        q5.counts,
        q5.certain_label()
    );
    // here Kevin (ages 1 or 2) is nearest in 2 worlds (label 1), Anna in the
    // age=30 world (label 1) — still certain
    assert_eq!(certain_label(&dataset, &cfg, &[5.0]), Some(1));

    println!("\nand for a 31-year-old (between John and Kevin's age=30 candidate):");
    let q31 = q2::<u128>(&dataset, &cfg, &[31.0]);
    println!(
        "  worlds per label: {:?} (certain: {:?})",
        q31.counts,
        q31.certain_label()
    );
    assert_eq!(
        q31.certain_label(),
        None,
        "the prediction depends on Kevin's true age"
    );

    println!("\ncertain answers reason about query results; certain predictions about models.");
}
