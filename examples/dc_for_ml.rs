//! Data cleaning for ML, end to end (§4–§5 in miniature).
//!
//! Generates a Bank-profile bundle, runs CPClean against RandomClean, and
//! prints the cleaning curves plus the final gap closed — a small Figure 9.
//! Run:
//!
//! ```text
//! cargo run --release --example dc_for_ml
//! ```

use cpclean::clean::{average_random_runs, gap_closed, run_cpclean, CleaningProblem, RunOptions};
use cpclean::core::CpConfig;
use cpclean::datasets::{bank, make_bundle, prepare, BundleConfig};
use cpclean::knn::KnnClassifier;
use cpclean::table::default_clean;

fn main() {
    // a small Bank-style instance: 150 training rows (20% dirty), complete
    // validation and test sets
    let mut cfg = BundleConfig::laptop(11);
    cfg.n_train = 150;
    cfg.n_val = 60;
    cfg.n_test = 200;
    let bundle = make_bundle(&bank(), &cfg);
    let prep = prepare(&bundle, &cfg.repair);
    println!(
        "dataset: {} train rows ({} dirty), {} validation, {} test; {:.0} possible worlds (log10 = {:.1})",
        cfg.n_train,
        prep.table_dataset.dataset.dirty_indices().len(),
        cfg.n_val,
        cfg.n_test,
        prep.table_dataset.dataset.world_count_log10().exp2(),
        prep.table_dataset.dataset.world_count_log10(),
    );

    // bounds of the gap
    let labels = prep.table_dataset.labels.clone();
    let acc_gt = KnnClassifier::new(3)
        .fit(prep.gt_train_x.clone(), labels.clone(), prep.n_labels)
        .accuracy(&prep.test_x, &prep.test_y);
    let acc_default = KnnClassifier::new(3)
        .fit(
            prep.encoder
                .encode_table(&default_clean(&bundle.dirty_train)),
            labels,
            prep.n_labels,
        )
        .accuracy(&prep.test_x, &prep.test_y);
    println!("ground-truth accuracy {acc_gt:.3}, default-cleaning accuracy {acc_default:.3}");

    let problem = CleaningProblem {
        dataset: prep.table_dataset.dataset.clone(),
        config: CpConfig::new(3),
        val_x: std::sync::Arc::new(prep.val_x.clone()),
        truth_choice: prep.truth_choice.clone(),
        default_choice: prep.default_choice.clone(),
    };
    let opts = RunOptions::default();

    println!("\nrunning CPClean (sequential information maximization)…");
    let cp = run_cpclean(&problem, &prep.test_x, &prep.test_y, &opts);
    println!("running RandomClean (3 seeds)…");
    let random = average_random_runs(&problem, &prep.test_x, &prep.test_y, &[1, 2, 3], &opts);

    println!("\ncleaned | CPClean CP'ed | CPClean acc | Random CP'ed | Random acc");
    let n_dirty = problem.dirty_rows().len();
    for cleaned in (0..=n_dirty).step_by((n_dirty / 10).max(1)) {
        let cp_pt = cp
            .curve
            .iter()
            .rev()
            .find(|p| p.cleaned <= cleaned)
            .unwrap();
        let rn_pt = random.iter().rev().find(|p| p.cleaned <= cleaned).unwrap();
        println!(
            "{cleaned:>7} | {:>12.0}% | {:>11.3} | {:>11.0}% | {:>10.3}",
            cp_pt.frac_val_cp * 100.0,
            cp_pt.test_accuracy,
            rn_pt.frac_val_cp * 100.0,
            rn_pt.test_accuracy,
        );
    }

    println!(
        "\nCPClean: converged = {}, cleaned {}/{} dirty rows, gap closed = {:.0}%",
        cp.converged,
        cp.n_cleaned(),
        n_dirty,
        gap_closed(cp.final_point().test_accuracy, acc_default, acc_gt) * 100.0,
    );
    println!(
        "at the same cleaning budget, RandomClean closed {:.0}% of the gap",
        gap_closed(
            random
                .iter()
                .rev()
                .find(|p| p.cleaned <= cp.n_cleaned())
                .unwrap()
                .test_accuracy,
            acc_default,
            acc_gt
        ) * 100.0,
    );
}
